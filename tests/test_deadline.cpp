// pim::deadline — cooperative cancellation and wall-clock budgets
// (docs/robustness.md "Deadlines & cancellation").
//
// Covers the token itself (budget arming, cancel flag, Scope nesting,
// GraceScope suppression), the exec engine's prefix-cutoff stop contract
// (completed sets and per-item values bit-identical at any thread
// count), and the graceful partial-result degradations: Monte-Carlo
// yield from the completed sample prefix, charlib sweeps patched through
// the quorum path, and cosi synthesis returning the best feasible sizing
// found. Deterministic stops come from the deadline-expire /
// cancel-midchunk fault sites — each item's fire pattern is a pure
// function of (site seed, item index), so the tests predict the cutoff
// by replaying the draw sequence instead of hardcoding seeds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "api/pim_api.hpp"
#include "cache/store.hpp"
#include "charlib/characterize.hpp"
#include "charlib/coeffs_io.hpp"
#include "sta/calibrated.hpp"
#include "cosi/synthesis.hpp"
#include "deadline/deadline.hpp"
#include "exec/engine.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "obs/metrics.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim {
namespace {

using namespace pim::unit;

class DeadlineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    deadline::reset();
    fault::clear();
    obs::registry().reset();
    exec::set_threads(0);
  }
  void TearDown() override {
    deadline::reset();
    fault::clear();
    obs::set_enabled(false);
    obs::registry().reset();
    exec::set_threads(0);
  }
};

// ----------------------------------------------------------------- token

TEST_F(DeadlineFixture, DisengagedTokenReportsNothing) {
  EXPECT_FALSE(deadline::engaged());
  EXPECT_FALSE(deadline::cancel_requested());
  EXPECT_EQ(deadline::remaining_ns(), INT64_MAX);
  EXPECT_EQ(deadline::check(), deadline::StopReason::none);
}

TEST_F(DeadlineFixture, BudgetArmsAndExpires) {
  deadline::set_budget_ms(3'600'000);
  EXPECT_TRUE(deadline::engaged());
  EXPECT_GT(deadline::remaining_ns(), 0);
  EXPECT_LE(deadline::remaining_ns(), 3'600'000'000'000LL);
  EXPECT_EQ(deadline::check(), deadline::StopReason::none);

  deadline::set_budget_ms(1);
  ::usleep(3000);
  EXPECT_EQ(deadline::remaining_ns(), 0);
  EXPECT_EQ(deadline::check(), deadline::StopReason::deadline_exceeded);

  deadline::set_budget_ms(0);  // <= 0 clears the budget
  EXPECT_FALSE(deadline::engaged());
  EXPECT_EQ(deadline::check(), deadline::StopReason::none);
}

TEST_F(DeadlineFixture, CancelBeatsTheClockAndSurvivesBudgetReset) {
  deadline::request_cancel();
  EXPECT_TRUE(deadline::engaged());
  EXPECT_TRUE(deadline::cancel_requested());
  EXPECT_EQ(deadline::check(), deadline::StopReason::cancelled);
  // A Scope arming/restoring a budget must not clear a pending cancel:
  // SIGINT has to survive into the finish path.
  {
    deadline::Scope budget(3'600'000);
    EXPECT_EQ(deadline::check(), deadline::StopReason::cancelled);
  }
  EXPECT_EQ(deadline::check(), deadline::StopReason::cancelled);
  deadline::reset();
  EXPECT_EQ(deadline::check(), deadline::StopReason::none);
}

TEST_F(DeadlineFixture, ScopeNestingKeepsTheTighterDeadline) {
  deadline::Scope outer(3'600'000);
  const int64_t outer_left = deadline::remaining_ns();
  {
    deadline::Scope inner(10);  // much tighter: must win
    EXPECT_LE(deadline::remaining_ns(), 10'000'000LL);
  }
  // Restored to the outer deadline, not cleared.
  EXPECT_GT(deadline::remaining_ns(), outer_left / 2);
  {
    deadline::Scope looser(7'200'000);  // must NOT loosen the outer budget
    EXPECT_LE(deadline::remaining_ns(), 3'600'000'000'000LL);
  }
}

TEST_F(DeadlineFixture, GraceScopeSuppressesAPendingStop) {
  deadline::request_cancel();
  {
    deadline::GraceScope grace;
    EXPECT_EQ(deadline::check(), deadline::StopReason::none);
    {
      deadline::GraceScope nested;
      EXPECT_EQ(deadline::check(), deadline::StopReason::none);
    }
    EXPECT_EQ(deadline::check(), deadline::StopReason::none);
  }
  EXPECT_EQ(deadline::check(), deadline::StopReason::cancelled);
}

TEST_F(DeadlineFixture, StopErrorsCarryCodeAndCounts) {
  const Error timeout = deadline::stop_error(deadline::StopReason::deadline_exceeded, 3, 10);
  EXPECT_EQ(timeout.code(), ErrorCode::deadline_exceeded);
  EXPECT_NE(std::string(timeout.what()).find("3/10"), std::string::npos);
  EXPECT_NE(std::string(timeout.what()).find("deadline exceeded"), std::string::npos);

  const Error cancel = deadline::stop_error(deadline::StopReason::cancelled, 0, 7);
  EXPECT_EQ(cancel.code(), ErrorCode::cancelled);
  EXPECT_NE(std::string(cancel.what()).find("0/7"), std::string::npos);

  EXPECT_EQ(deadline::error_code_for(deadline::StopReason::cancelled),
            ErrorCode::cancelled);
  EXPECT_STREQ(deadline::stop_reason_name(deadline::StopReason::deadline_exceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::deadline_exceeded), "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::cancelled), "cancelled");
}

TEST_F(DeadlineFixture, CancelChecksAreCountedWhenEngaged) {
  obs::set_enabled(true);
  obs::registry().reset();
  deadline::set_budget_ms(3'600'000);
  for (int i = 0; i < 5; ++i) (void)deadline::check();
  EXPECT_EQ(obs::registry().counter("cancel.checks").value(), 5);
  deadline::reset();
  // Disengaged fast path: no counter traffic at all.
  for (int i = 0; i < 5; ++i) (void)deadline::check();
  EXPECT_EQ(obs::registry().counter("cancel.checks").value(), 5);
}

// ------------------------------------------------------------------ exec

// Replays the fault harness's per-item draw sequence the way the engine
// polls it (one check per item under ScopedStream(i)): the first index
// whose site stream fires is the region's predicted prefix cutoff.
size_t predicted_cutoff(const char* site, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    fault::ScopedStream stream(i);
    if (fault::should_fire(site)) return i;
  }
  return n;
}

TEST_F(DeadlineFixture, FaultStopsHavePrefixCutoffAtAnyThreadCount) {
  constexpr size_t kItems = 400;
  const std::string spec = "deadline-expire:0.01:11";
  fault::configure(spec);
  const size_t cutoff = predicted_cutoff(fault::kDeadlineExpire, kItems);
  ASSERT_GT(cutoff, 0u) << "seed fires at item 0; pick another";
  ASSERT_LT(cutoff, kItems) << "seed never fires; pick another";

  for (int threads : {1, 2, 8}) {
    fault::configure(spec);  // reset fired tallies between runs
    exec::ParallelOptions opt;
    opt.threads = threads;
    const auto batch = exec::parallel_try_map<double>(
        kItems, [](size_t i) { return static_cast<double>(i) * 1.25; }, opt);
    EXPECT_EQ(batch.stop, deadline::StopReason::deadline_exceeded) << threads;
    EXPECT_EQ(batch.completed, cutoff) << threads;
    EXPECT_TRUE(batch.truncated());
    EXPECT_FALSE(batch.all_ok());
    for (size_t i = 0; i < cutoff; ++i) {
      ASSERT_TRUE(batch.values[i].has_value()) << threads << " item " << i;
      EXPECT_EQ(*batch.values[i], static_cast<double>(i) * 1.25);
    }
    for (size_t i = cutoff; i < kItems; ++i)
      EXPECT_FALSE(batch.values[i].has_value()) << threads << " item " << i;
  }
}

TEST_F(DeadlineFixture, ParallelForThrowsTypedStopWithCompletedCount) {
  fault::configure("cancel-midchunk:1");
  try {
    exec::parallel_for(10, [](size_t) {});
    FAIL() << "expected cancelled";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::cancelled);
    EXPECT_NE(std::string(e.what()).find("0/10"), std::string::npos);
  }
}

TEST_F(DeadlineFixture, RealFailureBelowCutoffOutranksTheStop) {
  exec::BatchResult<double> batch;
  batch.values.resize(5);
  batch.values[0] = 1.0;
  batch.values[2] = 3.0;
  batch.failed = {1};
  batch.errors = {Error("boom", ErrorCode::no_convergence)};
  batch.stop = deadline::StopReason::deadline_exceeded;
  batch.completed = 3;
  EXPECT_EQ(batch.surviving(), 2u);
  const auto expected = std::move(batch).into_expected();
  ASSERT_FALSE(expected.ok());
  EXPECT_EQ(expected.error().code(), ErrorCode::no_convergence);
}

TEST_F(DeadlineFixture, StoppedRegionsRecordObsGauges) {
  obs::set_enabled(false);  // force_set contract: gauges land even when off
  fault::configure("deadline-expire:0.01:11");
  const auto batch =
      exec::parallel_try_map<int>(400, [](size_t i) { return static_cast<int>(i); });
  ASSERT_TRUE(batch.truncated());
  EXPECT_EQ(obs::registry().gauge("partial.items").value(),
            static_cast<double>(batch.completed));
}

// ------------------------------------------------------------- variation

TechnologyFit synthetic_fit(const Technology& tech) {
  TechnologyFit fit;
  fit.node = tech.node;
  fit.vdd = tech.vdd;
  RepeaterEdgeFit e;
  e.a0 = 5e-12;
  e.a1 = 0.05;
  e.rho0 = 2e-3;
  e.rho1 = 1e6;
  e.b0 = 2e-12;
  e.b1 = 0.3;
  e.b2 = 5e-4;
  fit.inv_rise = fit.inv_fall = fit.buf_rise = fit.buf_fall = e;
  fit.gamma = 7e-10;
  fit.leakage.n0 = fit.leakage.p0 = 1e-9;
  fit.leakage.n1 = fit.leakage.p1 = 1e-2;
  fit.area0 = 1e-12;
  fit.area1 = 1e-6;
  return fit;
}

TEST_F(DeadlineFixture, MonteCarloDegradesToCompletedPrefix) {
  const Technology& tech = technology(TechNode::N65);
  const ProposedModel model(tech, synthetic_fit(tech));
  LinkContext ctx;
  ctx.length = 2 * mm;
  LinkDesign design;
  design.num_repeaters = 3;

  const MonteCarloResult clean = monte_carlo_link(model, ctx, design, 200, 5);
  EXPECT_FALSE(clean.partial);
  EXPECT_EQ(clean.requested_samples, 200);
  ASSERT_EQ(clean.delays.size(), 200u);
  // The binomial CI matches the formula over the surviving samples.
  const double p = clean.yield_at(clean.mean_delay);
  EXPECT_NEAR(clean.yield_ci95(clean.mean_delay),
              1.96 * std::sqrt(p * (1.0 - p) / 200.0), 1e-12);

  const std::string spec = "cancel-midchunk:0.01:11";
  fault::configure(spec);
  const size_t cutoff = predicted_cutoff(fault::kCancelMidchunk, 200);
  ASSERT_GT(cutoff, 0u);
  ASSERT_LT(cutoff, 200u);

  fault::configure(spec);
  const MonteCarloResult mc = monte_carlo_link(model, ctx, design, 200, 5);
  EXPECT_TRUE(mc.partial);
  EXPECT_EQ(mc.requested_samples, 200);
  EXPECT_EQ(mc.delays.size() + static_cast<size_t>(mc.failed_samples), cutoff);
  EXPECT_TRUE(std::isfinite(mc.mean_delay));
  EXPECT_GT(mc.mean_delay, 0.0);
  // Fewer samples, same estimator: the confidence interval widens.
  const double partial_p = mc.yield_at(mc.mean_delay);
  if (partial_p > 0.0 && partial_p < 1.0)
    EXPECT_GT(mc.yield_ci95(mc.mean_delay),
              1.96 * std::sqrt(partial_p * (1.0 - partial_p) / 200.0) - 1e-12);

  // The completed set and every per-sample value are thread-invariant.
  for (int threads : {1, 2, 8}) {
    exec::set_threads(threads);
    fault::configure(spec);
    const MonteCarloResult again = monte_carlo_link(model, ctx, design, 200, 5);
    EXPECT_EQ(again.delays.size(), mc.delays.size()) << threads;
    EXPECT_EQ(again.failed_samples, mc.failed_samples) << threads;
    for (size_t i = 0; i < mc.delays.size(); ++i)
      EXPECT_EQ(again.delays[i], mc.delays[i]) << threads << " sample " << i;
  }
  exec::set_threads(0);

  // A stop with zero completed samples cannot degrade: typed error.
  fault::configure("deadline-expire:1");
  try {
    monte_carlo_link(model, ctx, design, 50, 5);
    FAIL() << "expected deadline_exceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
  }
}

// --------------------------------------------------------------- charlib

TEST_F(DeadlineFixture, CharlibStopBelowQuorumIsTypedNotNoConvergence) {
  fault::configure("deadline-expire:1");  // stops every sweep at item 0
  CharacterizationOptions opt;
  opt.slew_axis = {20 * ps, 100 * ps};
  opt.fanout_axis = {2.0, 8.0};
  try {
    characterize_cell(technology(TechNode::N65), CellKind::Inverter, 8, opt);
    FAIL() << "expected deadline_exceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
  }
}

TEST_F(DeadlineFixture, CharlibPatchesTruncatedTailWhenQuorumHolds) {
  // Find a seed whose first fire lands on the LAST of the 2x2 sweep's
  // four points: cutoff 3 leaves 3 of 4 survivors (quorum 0.7 holds), and
  // both the rise and fall tables see the same per-item draw pattern.
  CharacterizationOptions opt;
  opt.slew_axis = {20 * ps, 100 * ps};
  opt.fanout_axis = {2.0, 8.0};
  uint64_t chosen = 0;
  for (uint64_t seed = 1; seed < 400 && chosen == 0; ++seed) {
    fault::configure("cancel-midchunk:0.3:" + std::to_string(seed));
    if (predicted_cutoff(fault::kCancelMidchunk, 4) == 3) chosen = seed;
  }
  ASSERT_NE(chosen, 0u) << "no seed with cutoff 3 in range";

  fault::configure("cancel-midchunk:0.3:" + std::to_string(chosen));
  const RepeaterCell cell =
      characterize_cell(technology(TechNode::N65), CellKind::Inverter, 8, opt);
  EXPECT_TRUE(cell.partial());
  EXPECT_TRUE(cell.rise.partial);
  // The truncated point was neighbor-patched: every table entry is a
  // finite, positive timing value.
  for (size_t i = 0; i < cell.rise.slew_axis.size(); ++i)
    for (size_t j = 0; j < cell.rise.load_axis.size(); ++j) {
      EXPECT_GT(cell.rise.delay(i, j), 0.0) << i << "," << j;
      EXPECT_TRUE(std::isfinite(cell.rise.delay(i, j)));
    }

  // Clean run for reference: the patched table differs only at the
  // truncated point's entries, everything below the cutoff is identical.
  fault::clear();
  const RepeaterCell ref =
      characterize_cell(technology(TechNode::N65), CellKind::Inverter, 8, opt);
  EXPECT_FALSE(ref.partial());
  EXPECT_EQ(cell.rise.delay(0, 0), ref.rise.delay(0, 0));
  EXPECT_EQ(cell.rise.delay(0, 1), ref.rise.delay(0, 1));
  EXPECT_EQ(cell.rise.delay(1, 0), ref.rise.delay(1, 0));
}

TEST_F(DeadlineFixture, CalibratedFitRefusesTruncatedLibraryAndNeverCaches) {
  // A fit has no partial semantics and its cache key carries no deadline
  // state: a stop that leaves charlib's quorum intact must surface the
  // typed error from corner_calibrated_fit, and neither cache tier may
  // keep coefficients regressed from the patched tables.
  struct ScratchCache {
    std::string dir;
    ScratchCache() : dir(::testing::TempDir() + "pim_deadline_fit_cache") {
      std::filesystem::remove_all(dir);
      cache::set_dir(dir);
      cache::set_mode(cache::Mode::ReadWrite);
      cache::Store::global().clear_memory();
    }
    ~ScratchCache() {
      cache::Store::global().clear_memory();
      cache::reset_mode();
      cache::set_dir("");
      std::filesystem::remove_all(dir);
    }
  } scratch;

  CharacterizationOptions copt;
  copt.slew_axis = {20 * ps, 100 * ps};
  copt.fanout_axis = {2.0, 8.0};
  copt.drives = {2, 8, 32};
  copt.buffers = false;
  CompositionOptions comp;
  comp.drives = {8, 32};
  comp.segment_lengths = {0.5e-3, 1.5e-3};
  comp.input_slews = {50e-12, 300e-12};
  comp.chain_lengths = {1, 3};

  // Seed whose first fire lands on the last of the 2x2 sweep's four
  // points, so the quorum holds and characterization itself degrades to
  // a partial library instead of throwing below the fit layer.
  uint64_t chosen = 0;
  for (uint64_t seed = 1; seed < 400 && chosen == 0; ++seed) {
    fault::configure("cancel-midchunk:0.3:" + std::to_string(seed));
    if (predicted_cutoff(fault::kCancelMidchunk, 4) == 3) chosen = seed;
  }
  ASSERT_NE(chosen, 0u) << "no seed with cutoff 3 in range";
  fault::configure("cancel-midchunk:0.3:" + std::to_string(chosen));

  try {
    corner_calibrated_fit(TechNode::N65, Corner{}, "", copt, comp);
    FAIL() << "expected cancelled";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::cancelled);
  }
  // Nothing reached the store (charlib itself never writes entries).
  EXPECT_EQ(cache::Store::global().memory_entries(), 0u);

  // A clean retry recomputes from scratch; bit-identity against a
  // cache-off ground truth proves no biased entry was served.
  fault::clear();
  const TechnologyFit clean =
      corner_calibrated_fit(TechNode::N65, Corner{}, "", copt, comp);
  EXPECT_EQ(cache::Store::global().memory_entries(), 1u);
  cache::set_mode(cache::Mode::Off);
  const TechnologyFit truth =
      corner_calibrated_fit(TechNode::N65, Corner{}, "", copt, comp);
  EXPECT_EQ(write_fit(clean), write_fit(truth));
}

// ------------------------------------------------------------------ cosi

TEST_F(DeadlineFixture, SynthesisKeepsBestFeasibleSizingOnCancel) {
  SocSpec spec;
  spec.name = "tiny";
  spec.die_width = 4 * mm;
  spec.die_height = 4 * mm;
  spec.data_width = 32;
  spec.cores = {{"a", 0.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"b", 3.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"c", 2.0 * mm, 3.5 * mm, 0.5 * mm, 0.5 * mm}};
  spec.flows = {{0, 1, 2e9}, {1, 2, 1e9}, {0, 2, 0.5e9}};
  const BakogluModel model(technology(TechNode::N65));
  NocSynthesisOptions opt;

  // cancel-midchunk:1 fires on the first merge-loop poll: phases 2 and
  // the finalization tail (GraceScope) still run, so the result is the
  // initial feasible network, marked partial, with zero merges.
  fault::configure("cancel-midchunk:1");
  const NocSynthesisResult r = synthesize_noc(spec, model, opt);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.merges_applied, 0);
  // The pre-merge topology is point-to-point: links exist, routers may not.
  EXPECT_FALSE(r.architecture.edges().empty());
  EXPECT_GT(r.metrics.total_power(), 0.0);

  // Same via the pending-cancel flag instead of the fault site.
  fault::clear();
  deadline::request_cancel();
  const NocSynthesisResult c = synthesize_noc(spec, model, opt);
  EXPECT_TRUE(c.partial);
  EXPECT_GT(c.metrics.total_power(), 0.0);
  deadline::reset();
}

// ------------------------------------------------------------------- api

TEST_F(DeadlineFixture, ApiSynthesisReportsPartialBestSizing) {
  api::SynthesisRequest req;
  req.spec = "dvopd";
  req.tech = "65nm";
  req.model = "bakoglu";  // closed-form: no characterization needed
  fault::configure("cancel-midchunk:1");
  const auto result = api::run_synthesis(req);
  ASSERT_TRUE(result.ok()) << result.error().what();
  EXPECT_TRUE(result.value().partial);
  EXPECT_GT(result.value().num_links, 0);
  EXPECT_GT(result.value().dynamic_power_mw, 0.0);
}

TEST_F(DeadlineFixture, ApiMapsZeroProgressStopsToTypedErrors) {
  // A charlib sweep stopped at item 0 has nothing to patch: the facade
  // surfaces the typed error instead of a fabricated partial result.
  api::CharlibRequest req;
  req.tech = "65nm";
  fault::configure("deadline-expire:1");
  const auto result = api::run_charlib(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::deadline_exceeded);
}

TEST_F(DeadlineFixture, ApiScopeArmsAndRestoresTheAmbientBudget) {
  // The facade arms the request's budget only for the call: an expired
  // per-request deadline must not leak into later requests.
  api::TechfileRequest req;
  req.tech = "45nm";
  req.deadline_ms = 3'600'000;
  ASSERT_TRUE(api::run_techfile(req).ok());
  EXPECT_FALSE(deadline::engaged());
  EXPECT_EQ(deadline::check(), deadline::StopReason::none);
}

}  // namespace
}  // namespace pim
