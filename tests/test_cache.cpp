// Tests for src/cache — the content-addressed result cache: SHA-256,
// canonical key derivation, the two-tier store (LRU memory + on-disk
// entries), fail-open corruption handling, mode semantics, concurrent
// lookups, and bit-identical cached flows (fit / buffering / yield).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "buffering/optimize.hpp"
#include "cache/key.hpp"
#include "cache/sha256.hpp"
#include "cache/store.hpp"
#include "charlib/coeffs_io.hpp"
#include "exec/engine.hpp"
#include "models/proposed.hpp"
#include "obs/metrics.hpp"
#include "sta/calibrated.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim::cache {
namespace {

using namespace pim::unit;

// Fresh scratch directory per test; pins the global mode/dir so tests
// never touch the user's ~/.cache/pim, and restores them afterwards.
class CacheDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "pim_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    set_dir(dir_);
    set_mode(Mode::ReadWrite);
    Store::global().clear_memory();
  }
  void TearDown() override {
    Store::global().clear_memory();
    reset_mode();
    set_dir("");
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

CacheKey key_of(const std::string& tag) {
  KeyBuilder kb("test");
  kb.field("tag", tag);
  return kb.finish();
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Two-block message from FIPS 180-4 appendix B.2.
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Sha256 h;
  h.update("ab");
  h.update("");
  h.update("c");
  EXPECT_EQ(h.hex_digest(), sha256_hex("abc"));
  // Spans a block boundary.
  const std::string big(130, 'x');
  Sha256 h2;
  h2.update(big.substr(0, 63));
  h2.update(big.substr(63));
  EXPECT_EQ(h2.hex_digest(), sha256_hex(big));
}

TEST(KeyBuilder, StableAcrossRebuilds) {
  const auto build = [] {
    KeyBuilder kb("fit");
    kb.field("tech", "65nm");
    kb.field("length", 5.0e-3);
    kb.field("samples", 1000);
    kb.field("flag", true);
    kb.field("drives", std::vector<int>{2, 8, 32});
    kb.blob("payload", std::string("\x00\x01raw", 5));
    return kb.finish();
  };
  const CacheKey a = build();
  const CacheKey b = build();
  EXPECT_EQ(a.kind, "fit");
  EXPECT_EQ(a.hex, b.hex);
  EXPECT_EQ(a.hex.size(), 64u);
}

TEST(KeyBuilder, OrderKindAndValuesAllMatter) {
  KeyBuilder ab("k");
  ab.field("a", 1);
  ab.field("b", 2);
  KeyBuilder ba("k");
  ba.field("b", 2);
  ba.field("a", 1);
  EXPECT_NE(ab.finish().hex, ba.finish().hex);

  KeyBuilder k1("fit");
  k1.field("a", 1);
  KeyBuilder k2("buffering");
  k2.field("a", 1);
  EXPECT_NE(k1.finish().hex, k2.finish().hex);

  // 17 significant digits: doubles that differ in the last ulp get
  // different keys.
  KeyBuilder d1("k");
  d1.field("x", 0.1 + 0.2);
  KeyBuilder d2("k");
  d2.field("x", 0.3);
  EXPECT_NE(d1.finish().hex, d2.finish().hex);
}

TEST(KeyBuilder, BlobsAreLengthPrefixed) {
  KeyBuilder k1("k");
  k1.blob("a", "bc");
  KeyBuilder k2("k");
  k2.blob("ab", "c");
  EXPECT_NE(k1.finish().hex, k2.finish().hex);
}

TEST(CacheMode, NameParsing) {
  Mode mode = Mode::Off;
  EXPECT_TRUE(mode_from_name("rw", mode));
  EXPECT_EQ(mode, Mode::ReadWrite);
  EXPECT_TRUE(mode_from_name("ro", mode));
  EXPECT_EQ(mode, Mode::ReadOnly);
  EXPECT_TRUE(mode_from_name("off", mode));
  EXPECT_EQ(mode, Mode::Off);
  EXPECT_FALSE(mode_from_name("bogus", mode));
  EXPECT_FALSE(mode_from_name("", mode));
  EXPECT_STREQ(mode_name(Mode::ReadWrite), "rw");
  EXPECT_STREQ(mode_name(Mode::ReadOnly), "ro");
  EXPECT_STREQ(mode_name(Mode::Off), "off");
}

TEST_F(CacheDirFixture, MemoryAndDiskRoundTrip) {
  Store& store = Store::global();
  const CacheKey key = key_of("roundtrip");
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key, "payload-bytes");
  const auto hit = store.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  EXPECT_TRUE(std::filesystem::exists(store.entry_path(key)));

  // Disk tier: a fresh memory tier (i.e. a new process) still hits.
  store.clear_memory();
  EXPECT_EQ(store.memory_entries(), 0u);
  const auto disk_hit = store.get(key);
  ASSERT_TRUE(disk_hit.has_value());
  EXPECT_EQ(*disk_hit, "payload-bytes");
  // The disk hit repopulates the memory tier.
  EXPECT_EQ(store.memory_entries(), 1u);
}

TEST_F(CacheDirFixture, EncodeDecodeEntry) {
  const CacheKey key = key_of("codec");
  const std::string payload = "line one\nline two\n";
  const std::string entry = Store::encode_entry(key, payload);
  const auto decoded = Store::decode_entry(key, entry);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), payload);

  // Any tampering is a named io_parse failure, not a crash.
  const auto truncated = Store::decode_entry(key, entry.substr(0, entry.size() / 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code(), ErrorCode::io_parse);
  std::string flipped = entry;
  flipped[flipped.size() - 3] ^= 1;  // corrupt the payload
  EXPECT_FALSE(Store::decode_entry(key, flipped).ok());
  const auto wrong_key = Store::decode_entry(key_of("other"), entry);
  ASSERT_FALSE(wrong_key.ok());
}

TEST_F(CacheDirFixture, CorruptDiskEntryFailsOpen) {
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("corrupt");
  store.put(key, "good payload");
  store.clear_memory();

  // Garble the on-disk entry behind the store's back.
  {
    std::ofstream out(store.entry_path(key), std::ios::trunc);
    out << "pim-cache v1\ngarbage\n";
  }
  const int64_t corrupt_before = obs::registry().counter("cache.corrupt").value();
  EXPECT_FALSE(store.get(key).has_value());  // miss, not an exception
  EXPECT_EQ(obs::registry().counter("cache.corrupt").value(), corrupt_before + 1);
  // rw mode scrubs the bad entry so the recompute can re-register it.
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
  store.put(key, "recomputed");
  store.clear_memory();
  const auto hit = store.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "recomputed");
  obs::set_enabled(false);
}

TEST_F(CacheDirFixture, LookupMetricsTrackTiersAndHitRate) {
  obs::registry().reset();
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("metrics");

  store.get(key);               // miss
  store.put(key, "12 bytes....");
  store.get(key);               // memory hit
  store.clear_memory();
  store.get(key);               // disk hit

  // hit_rate derives from the cache.hit/cache.miss counters, so after
  // one miss and two hits it reads 2/3 (and a registry reset clears it
  // with everything else — no bleed across api requests).
  EXPECT_DOUBLE_EQ(obs::registry().gauge("cache.hit_rate").value(), 2.0 / 3.0);

  // One load-latency sample per tier that actually served a hit.
  EXPECT_EQ(obs::registry().timer("cache.mem.load").count(), 1);
  EXPECT_EQ(obs::registry().timer("cache.disk.load").count(), 1);

  // Entry-size histogram: one sample from put, one from the disk hit,
  // both the payload size (the histogram machinery is unit-agnostic).
  obs::Timer& entry_bytes = obs::registry().timer("cache.entry.bytes");
  EXPECT_EQ(entry_bytes.count(), 2);
  EXPECT_EQ(entry_bytes.total_ns(), 24);  // 2 x 12-byte payload
  EXPECT_EQ(entry_bytes.min_ns(), 12);
  EXPECT_EQ(entry_bytes.max_ns(), 12);

  obs::set_enabled(false);
  obs::registry().reset();
}

TEST_F(CacheDirFixture, LruEvictionRespectsBudgets) {
  Store store(Store::Options{/*max_memory_bytes=*/64, /*max_memory_entries=*/2,
                             /*disk_dir=*/dir_});
  const CacheKey a = key_of("a"), b = key_of("b"), c = key_of("c");
  store.put(a, "aaaa");
  store.put(b, "bbbb");
  EXPECT_EQ(store.memory_entries(), 2u);
  store.put(c, "cccc");  // evicts the least recently used (a)
  EXPECT_LE(store.memory_entries(), 2u);
  EXPECT_LE(store.memory_bytes(), 64u);
  // Evicted entries are not lost — the disk tier still has them.
  const auto hit = store.get(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "aaaa");

  // The byte budget alone also evicts: one oversized payload cannot wedge
  // the tier above its budget.
  store.put(key_of("big"), std::string(80, 'x'));
  EXPECT_LE(store.memory_bytes(), 64u);
}

TEST_F(CacheDirFixture, OffModeBypassesBothTiers) {
  set_mode(Mode::Off);
  Store& store = Store::global();
  const CacheKey key = key_of("off");
  store.put(key, "never stored");
  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(store.memory_entries(), 0u);
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
}

TEST_F(CacheDirFixture, ReadOnlyModeReadsButNeverWrites) {
  Store& store = Store::global();
  const CacheKey seeded = key_of("seeded");
  store.put(seeded, "from rw");  // seed the disk tier in rw mode
  store.clear_memory();

  set_mode(Mode::ReadOnly);
  const CacheKey fresh = key_of("fresh");
  store.put(fresh, "dropped");
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(fresh)));
  const auto hit = store.get(seeded);  // disk reads still work
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "from rw");
}

TEST_F(CacheDirFixture, ArmedFaultHarnessBypassesTheCache) {
  Store& store = Store::global();
  const CacheKey key = key_of("faulty");
  store.put(key, "cached before arming");
  fault::configure("io.open:0");  // armed, even at probability 0
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key_of("while-armed"), "dropped");
  fault::clear();
  EXPECT_TRUE(store.get(key).has_value());
  EXPECT_FALSE(store.get(key_of("while-armed")).has_value());
}

TEST_F(CacheDirFixture, ArmedFaultBypassCountsBypassNotHitOrMiss) {
  Store& store = Store::global();
  const CacheKey key = key_of("bypass-metrics");
  store.put(key, "payload");
  obs::set_enabled(true);
  auto& bypass = obs::registry().counter("cache.bypass");
  auto& hit = obs::registry().counter("cache.hit");
  auto& miss = obs::registry().counter("cache.miss");
  const int64_t bypass0 = bypass.value(), hit0 = hit.value(), miss0 = miss.value();
  fault::configure("io.open:0");
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key_of("bypass-put"), "dropped");
  fault::clear();
  obs::set_enabled(false);
  EXPECT_EQ(bypass.value(), bypass0 + 2);  // one get + one put
  EXPECT_EQ(hit.value(), hit0);
  EXPECT_EQ(miss.value(), miss0);
}

// Concurrent get/put from exec workers at a pinned thread count; TSan
// builds (scripts/check_tsan.sh) run this with race detection.
TEST_F(CacheDirFixture, ConcurrentLookupsAreRaceFree) {
  exec::set_threads(8);
  Store& store = Store::global();
  const int kItems = 64;
  exec::parallel_for(kItems, [&](size_t i) {
    const CacheKey key = key_of("concurrent-" + std::to_string(i % 8));
    const std::string payload = "payload-" + std::to_string(i % 8);
    store.put(key, payload);
    const auto hit = store.get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
  });
  exec::set_threads(0);
  for (int g = 0; g < 8; ++g) {
    const auto hit = store.get(key_of("concurrent-" + std::to_string(g)));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload-" + std::to_string(g));
  }
}

// End-to-end bit-identity of the cached flows, on a reduced deck so the
// cold pass stays fast. One fixture characterizes once; every case then
// proves warm == cold byte for byte.
class CachedFlowsFixture : public CacheDirFixture {
 protected:
  static CharacterizationOptions char_options() {
    CharacterizationOptions copt;
    copt.drives = {2, 8, 32};
    copt.buffers = false;
    return copt;
  }
  static CompositionOptions comp_options() {
    CompositionOptions comp;
    comp.drives = {8, 32};
    comp.segment_lengths = {0.5e-3, 1.5e-3};
    comp.input_slews = {50e-12, 300e-12};
    comp.chain_lengths = {1, 3};
    return comp;
  }
  static LinkContext ctx() {
    LinkContext c;
    c.length = 3 * mm;
    c.input_slew = 100 * ps;
    c.frequency = technology(TechNode::N65).clock_frequency;
    return c;
  }
};

TEST_F(CachedFlowsFixture, FitBufferingAndYieldHitsAreBitIdentical) {
  const TechnologyFit cold =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  // Fresh memory tier: the warm pass must come from the disk entry.
  Store::global().clear_memory();
  const TechnologyFit warm =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  EXPECT_EQ(write_fit(warm), write_fit(cold));

  // A different deck parameter is a different key — no false sharing.
  CompositionOptions other = comp_options();
  other.chain_lengths = {1, 2};
  const TechnologyFit refit =
      calibrated_fit(TechNode::N65, "", char_options(), other);
  EXPECT_NE(write_fit(refit), write_fit(cold));

  const ProposedModel model(technology(TechNode::N65), cold);
  BufferingOptions opt;
  opt.weight = 0.5;
  const BufferingResult buf_cold = optimize_buffering_cached(model, ctx(), opt);
  Store::global().clear_memory();
  const BufferingResult buf_warm = optimize_buffering_cached(model, ctx(), opt);
  EXPECT_EQ(buf_warm.feasible, buf_cold.feasible);
  EXPECT_EQ(buf_warm.design.kind, buf_cold.design.kind);
  EXPECT_EQ(buf_warm.design.drive, buf_cold.design.drive);
  EXPECT_EQ(buf_warm.design.num_repeaters, buf_cold.design.num_repeaters);
  EXPECT_EQ(buf_warm.cost, buf_cold.cost);  // EQ, not NEAR: bit-identical
  EXPECT_EQ(buf_warm.estimate.delay, buf_cold.estimate.delay);
  EXPECT_EQ(buf_warm.evaluations, buf_cold.evaluations);
  // The warm search ran zero model evaluations — it was a lookup.
  const BufferingResult direct = optimize_buffering(model, ctx(), opt);
  EXPECT_EQ(buf_warm.cost, direct.cost);

  LinkDesign design = buf_cold.design;
  const MonteCarloResult mc_cold =
      monte_carlo_link_cached(model, ctx(), design, 500, 2026);
  Store::global().clear_memory();
  const MonteCarloResult mc_warm =
      monte_carlo_link_cached(model, ctx(), design, 500, 2026);
  EXPECT_EQ(mc_warm.delays, mc_cold.delays);  // exact vector equality
  EXPECT_EQ(mc_warm.nominal_delay, mc_cold.nominal_delay);
  EXPECT_EQ(mc_warm.mean_delay, mc_cold.mean_delay);
  EXPECT_EQ(mc_warm.sigma_delay, mc_cold.sigma_delay);
  EXPECT_EQ(mc_warm.mean_power, mc_cold.mean_power);
  EXPECT_EQ(mc_warm.failed_samples, mc_cold.failed_samples);
  // And equals the uncached computation (the cache is transparent).
  const MonteCarloResult direct_mc = monte_carlo_link(model, ctx(), design, 500, 2026);
  EXPECT_EQ(mc_warm.delays, direct_mc.delays);

  // A different seed/sample-count is a different key.
  const MonteCarloResult other_seed =
      monte_carlo_link_cached(model, ctx(), design, 500, 2027);
  EXPECT_NE(other_seed.delays, mc_cold.delays);
}

}  // namespace
}  // namespace pim::cache
