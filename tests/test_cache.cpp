// Tests for src/cache — the content-addressed result cache: SHA-256,
// canonical key derivation, the two-tier store (LRU memory + on-disk
// entries), fail-open corruption handling, mode semantics, concurrent
// lookups, and bit-identical cached flows (fit / buffering / yield).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "buffering/optimize.hpp"
#include "cache/invalidate.hpp"
#include "cache/key.hpp"
#include "cache/manifest.hpp"
#include "cache/sha256.hpp"
#include "cache/store.hpp"
#include "charlib/coeffs_io.hpp"
#include "exec/engine.hpp"
#include "models/proposed.hpp"
#include "obs/metrics.hpp"
#include "sta/calibrated.hpp"
#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim::cache {
namespace {

using namespace pim::unit;

// Fresh scratch directory per test; pins the global mode/dir so tests
// never touch the user's ~/.cache/pim, and restores them afterwards.
class CacheDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "pim_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    set_dir(dir_);
    set_mode(Mode::ReadWrite);
    Store::global().clear_memory();
  }
  void TearDown() override {
    Store::global().clear_memory();
    reset_mode();
    set_dir("");
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

CacheKey key_of(const std::string& tag) {
  KeyBuilder kb("test");
  kb.field("tag", tag);
  return kb.finish();
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Two-block message from FIPS 180-4 appendix B.2.
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Sha256 h;
  h.update("ab");
  h.update("");
  h.update("c");
  EXPECT_EQ(h.hex_digest(), sha256_hex("abc"));
  // Spans a block boundary.
  const std::string big(130, 'x');
  Sha256 h2;
  h2.update(big.substr(0, 63));
  h2.update(big.substr(63));
  EXPECT_EQ(h2.hex_digest(), sha256_hex(big));
}

TEST(KeyBuilder, StableAcrossRebuilds) {
  const auto build = [] {
    KeyBuilder kb("fit");
    kb.field("tech", "65nm");
    kb.field("length", 5.0e-3);
    kb.field("samples", 1000);
    kb.field("flag", true);
    kb.field("drives", std::vector<int>{2, 8, 32});
    kb.blob("payload", std::string("\x00\x01raw", 5));
    return kb.finish();
  };
  const CacheKey a = build();
  const CacheKey b = build();
  EXPECT_EQ(a.kind, "fit");
  EXPECT_EQ(a.hex, b.hex);
  EXPECT_EQ(a.hex.size(), 64u);
}

TEST(KeyBuilder, OrderKindAndValuesAllMatter) {
  KeyBuilder ab("k");
  ab.field("a", 1);
  ab.field("b", 2);
  KeyBuilder ba("k");
  ba.field("b", 2);
  ba.field("a", 1);
  EXPECT_NE(ab.finish().hex, ba.finish().hex);

  KeyBuilder k1("fit");
  k1.field("a", 1);
  KeyBuilder k2("buffering");
  k2.field("a", 1);
  EXPECT_NE(k1.finish().hex, k2.finish().hex);

  // 17 significant digits: doubles that differ in the last ulp get
  // different keys.
  KeyBuilder d1("k");
  d1.field("x", 0.1 + 0.2);
  KeyBuilder d2("k");
  d2.field("x", 0.3);
  EXPECT_NE(d1.finish().hex, d2.finish().hex);
}

TEST(KeyBuilder, BlobsAreLengthPrefixed) {
  KeyBuilder k1("k");
  k1.blob("a", "bc");
  KeyBuilder k2("k");
  k2.blob("ab", "c");
  EXPECT_NE(k1.finish().hex, k2.finish().hex);
}

TEST(CacheMode, NameParsing) {
  Mode mode = Mode::Off;
  EXPECT_TRUE(mode_from_name("rw", mode));
  EXPECT_EQ(mode, Mode::ReadWrite);
  EXPECT_TRUE(mode_from_name("ro", mode));
  EXPECT_EQ(mode, Mode::ReadOnly);
  EXPECT_TRUE(mode_from_name("off", mode));
  EXPECT_EQ(mode, Mode::Off);
  EXPECT_FALSE(mode_from_name("bogus", mode));
  EXPECT_FALSE(mode_from_name("", mode));
  EXPECT_STREQ(mode_name(Mode::ReadWrite), "rw");
  EXPECT_STREQ(mode_name(Mode::ReadOnly), "ro");
  EXPECT_STREQ(mode_name(Mode::Off), "off");
}

TEST_F(CacheDirFixture, MemoryAndDiskRoundTrip) {
  Store& store = Store::global();
  const CacheKey key = key_of("roundtrip");
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key, "payload-bytes");
  const auto hit = store.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  EXPECT_TRUE(std::filesystem::exists(store.entry_path(key)));

  // Disk tier: a fresh memory tier (i.e. a new process) still hits.
  store.clear_memory();
  EXPECT_EQ(store.memory_entries(), 0u);
  const auto disk_hit = store.get(key);
  ASSERT_TRUE(disk_hit.has_value());
  EXPECT_EQ(*disk_hit, "payload-bytes");
  // The disk hit repopulates the memory tier.
  EXPECT_EQ(store.memory_entries(), 1u);
}

TEST_F(CacheDirFixture, EncodeDecodeEntry) {
  const CacheKey key = key_of("codec");
  const std::string payload = "line one\nline two\n";
  const std::string entry = Store::encode_entry(key, payload);
  const auto decoded = Store::decode_entry(key, entry);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), payload);

  // Any tampering is a named io_parse failure, not a crash.
  const auto truncated = Store::decode_entry(key, entry.substr(0, entry.size() / 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code(), ErrorCode::io_parse);
  std::string flipped = entry;
  flipped[flipped.size() - 3] ^= 1;  // corrupt the payload
  EXPECT_FALSE(Store::decode_entry(key, flipped).ok());
  const auto wrong_key = Store::decode_entry(key_of("other"), entry);
  ASSERT_FALSE(wrong_key.ok());
}

TEST_F(CacheDirFixture, CorruptDiskEntryFailsOpen) {
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("corrupt");
  store.put(key, "good payload");
  store.clear_memory();

  // Garble the on-disk entry behind the store's back.
  {
    std::ofstream out(store.entry_path(key), std::ios::trunc);
    out << "pim-cache v1\ngarbage\n";
  }
  const int64_t corrupt_before = obs::registry().counter("cache.corrupt").value();
  EXPECT_FALSE(store.get(key).has_value());  // miss, not an exception
  EXPECT_EQ(obs::registry().counter("cache.corrupt").value(), corrupt_before + 1);
  // rw mode scrubs the bad entry so the recompute can re-register it.
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
  store.put(key, "recomputed");
  store.clear_memory();
  const auto hit = store.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "recomputed");
  obs::set_enabled(false);
}

TEST_F(CacheDirFixture, LookupMetricsTrackTiersAndHitRate) {
  obs::registry().reset();
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("metrics");

  store.get(key);               // miss
  store.put(key, "12 bytes....");
  store.get(key);               // memory hit
  store.clear_memory();
  store.get(key);               // disk hit

  // hit_rate derives from the cache.hit/cache.miss counters, so after
  // one miss and two hits it reads 2/3 (and a registry reset clears it
  // with everything else — no bleed across api requests).
  EXPECT_DOUBLE_EQ(obs::registry().gauge("cache.hit_rate").value(), 2.0 / 3.0);

  // One load-latency sample per tier that actually served a hit.
  EXPECT_EQ(obs::registry().timer("cache.mem.load").count(), 1);
  EXPECT_EQ(obs::registry().timer("cache.disk.load").count(), 1);

  // Entry-size histogram: one sample from put, one from the disk hit,
  // both the payload size (the histogram machinery is unit-agnostic).
  obs::Timer& entry_bytes = obs::registry().timer("cache.entry.bytes");
  EXPECT_EQ(entry_bytes.count(), 2);
  EXPECT_EQ(entry_bytes.total_ns(), 24);  // 2 x 12-byte payload
  EXPECT_EQ(entry_bytes.min_ns(), 12);
  EXPECT_EQ(entry_bytes.max_ns(), 12);

  obs::set_enabled(false);
  obs::registry().reset();
}

TEST_F(CacheDirFixture, LruEvictionRespectsBudgets) {
  // The memory tier charges payload + manifest sidecar per entry, so the
  // budget is expressed in per-entry footprints (outside a Tracked scope
  // every entry carries the same empty-manifest image).
  const CacheKey a = key_of("a"), b = key_of("b"), c = key_of("c");
  const size_t footprint = 4 + encode_manifest(Manifest{a, {}, {}, 0}).size();
  const size_t budget = 2 * footprint;
  Store store(Store::Options{/*max_memory_bytes=*/budget, /*max_memory_entries=*/2,
                             /*disk_dir=*/dir_});
  store.put(a, "aaaa");
  store.put(b, "bbbb");
  EXPECT_EQ(store.memory_entries(), 2u);
  store.put(c, "cccc");  // evicts the least recently used (a)
  EXPECT_LE(store.memory_entries(), 2u);
  EXPECT_LE(store.memory_bytes(), budget);
  // Evicted entries are not lost — the disk tier still has them.
  const auto hit = store.get(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "aaaa");

  // The byte budget alone also evicts: one oversized payload cannot wedge
  // the tier above its budget.
  store.put(key_of("big"), std::string(2 * budget, 'x'));
  EXPECT_LE(store.memory_bytes(), budget);
}

TEST_F(CacheDirFixture, OffModeBypassesBothTiers) {
  set_mode(Mode::Off);
  Store& store = Store::global();
  const CacheKey key = key_of("off");
  store.put(key, "never stored");
  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(store.memory_entries(), 0u);
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
}

TEST_F(CacheDirFixture, ReadOnlyModeReadsButNeverWrites) {
  Store& store = Store::global();
  const CacheKey seeded = key_of("seeded");
  store.put(seeded, "from rw");  // seed the disk tier in rw mode
  store.clear_memory();

  set_mode(Mode::ReadOnly);
  const CacheKey fresh = key_of("fresh");
  store.put(fresh, "dropped");
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(fresh)));
  const auto hit = store.get(seeded);  // disk reads still work
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "from rw");
}

TEST_F(CacheDirFixture, ArmedFaultHarnessBypassesTheCache) {
  Store& store = Store::global();
  const CacheKey key = key_of("faulty");
  store.put(key, "cached before arming");
  fault::configure("io.open:0");  // armed, even at probability 0
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key_of("while-armed"), "dropped");
  fault::clear();
  EXPECT_TRUE(store.get(key).has_value());
  EXPECT_FALSE(store.get(key_of("while-armed")).has_value());
}

TEST_F(CacheDirFixture, ArmedFaultBypassCountsBypassNotHitOrMiss) {
  Store& store = Store::global();
  const CacheKey key = key_of("bypass-metrics");
  store.put(key, "payload");
  obs::set_enabled(true);
  auto& bypass = obs::registry().counter("cache.bypass");
  auto& hit = obs::registry().counter("cache.hit");
  auto& miss = obs::registry().counter("cache.miss");
  const int64_t bypass0 = bypass.value(), hit0 = hit.value(), miss0 = miss.value();
  fault::configure("io.open:0");
  EXPECT_FALSE(store.get(key).has_value());
  store.put(key_of("bypass-put"), "dropped");
  fault::clear();
  obs::set_enabled(false);
  EXPECT_EQ(bypass.value(), bypass0 + 2);  // one get + one put
  EXPECT_EQ(hit.value(), hit0);
  EXPECT_EQ(miss.value(), miss0);
}

// Concurrent get/put from exec workers at a pinned thread count; TSan
// builds (scripts/check_tsan.sh) run this with race detection.
TEST_F(CacheDirFixture, ConcurrentLookupsAreRaceFree) {
  exec::set_threads(8);
  Store& store = Store::global();
  const int kItems = 64;
  exec::parallel_for(kItems, [&](size_t i) {
    const CacheKey key = key_of("concurrent-" + std::to_string(i % 8));
    const std::string payload = "payload-" + std::to_string(i % 8);
    store.put(key, payload);
    const auto hit = store.get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
  });
  exec::set_threads(0);
  for (int g = 0; g < 8; ++g) {
    const auto hit = store.get(key_of("concurrent-" + std::to_string(g)));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload-" + std::to_string(g));
  }
}

// ---------------------------------------------------------------------------
// Provenance manifests, the Tracked capture scope, and the invalidation
// engine (cache/manifest.hpp, cache/invalidate.hpp).
// ---------------------------------------------------------------------------

CacheKey fill_key(const std::string& kind, char fill) {
  return CacheKey{kind, std::string(64, fill)};
}

TEST(ManifestCodec, RoundTripPreservesEverything) {
  Manifest m;
  m.key = fill_key("fit", 'a');
  m.facets = {{"tech", "65nm@nominal", std::string(64, 'b')},
              {"corner", "nominal", "nominal|1|1|1|1|1|1|25|1"},
              {"params", "fit", std::string(64, 'c')}};
  m.upstream = {fill_key("fit", 'd'), fill_key("buffering", 'e')};
  m.cost_ns = 123456789;
  const std::string image = encode_manifest(m);
  const auto decoded = decode_manifest(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().key.kind, m.key.kind);
  EXPECT_EQ(decoded.value().key.hex, m.key.hex);
  EXPECT_EQ(decoded.value().facets, m.facets);
  ASSERT_EQ(decoded.value().upstream.size(), 2u);
  EXPECT_EQ(decoded.value().upstream[0].hex, m.upstream[0].hex);
  EXPECT_EQ(decoded.value().upstream[1].kind, "buffering");
  EXPECT_EQ(decoded.value().cost_ns, m.cost_ns);

  // Tampering is a named parse failure, never a crash.
  EXPECT_FALSE(decode_manifest("").ok());
  EXPECT_FALSE(decode_manifest("garbage\n").ok());
  EXPECT_FALSE(decode_manifest(image.substr(0, image.size() / 2)).ok());
}

TEST(TrackedScope, FacetCaptureAndNestedPublish) {
  clear_artifact_registry();
  Tracked outer;
  CacheKey inner_key;
  {
    Tracked inner;
    KeyBuilder kb("fit");
    kb.facet("tech", "65nm@nominal", std::string(64, 'a'));
    kb.field("samples", 1000);
    inner_key = kb.finish();
    // facet() recorded the typed input; finish() rolled the loose field
    // into one "params" facet and stamped the cache format version.
    bool tech = false, params = false, format = false;
    for (const Facet& f : inner.facets()) {
      if (f.type == "tech" && f.name == "65nm@nominal") tech = true;
      if (f.type == "params") params = true;
      if (f.type == "format") format = true;
    }
    EXPECT_TRUE(tech);
    EXPECT_TRUE(params);
    EXPECT_TRUE(format);
    const Manifest m = inner.manifest(inner_key);
    EXPECT_EQ(m.key.hex, inner_key.hex);
    EXPECT_EQ(m.facets, inner.facets());
    // publish() reports the finished artifact to the PARENT scope: this
    // is the upstream edge a consuming wrapper's manifest records.
    inner.publish(inner_key);
    EXPECT_TRUE(inner.upstream_keys().empty());
  }
  ASSERT_EQ(outer.upstream_keys().size(), 1u);
  EXPECT_EQ(outer.upstream_keys()[0].hex, inner_key.hex);
}

TEST(ArtifactRegistry, ResolvesTokensEmbeddedInSignatures) {
  clear_artifact_registry();
  const std::string token(64, 'd');
  const CacheKey key = fill_key("fit", 'e');
  register_artifact(token, key);
  // Composite signatures (e.g. WorstCornerModel's) embed the token in
  // surrounding text; substring resolution still finds it.
  const auto hits = resolve_artifacts("worst(nominal=proposed/65nm/" + token + ")");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].hex, key.hex);
  EXPECT_TRUE(resolve_artifacts("no tokens here").empty());
  clear_artifact_registry();
  EXPECT_TRUE(resolve_artifacts(token).empty());
}

TEST_F(CacheDirFixture, PutWritesManifestSidecarWithTheEntry) {
  Store& store = Store::global();
  Tracked scope;
  KeyBuilder kb("fit");
  kb.facet("tech", "t@nominal", std::string(64, '1'));
  const CacheKey key = kb.finish();
  store.put(key, "payload");
  ASSERT_TRUE(std::filesystem::exists(store.manifest_path(key)));
  std::ifstream in(store.manifest_path(key), std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto m = decode_manifest(image);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().key.hex, key.hex);
  EXPECT_EQ(m.value().facets, scope.facets());
}

TEST_F(CacheDirFixture, EntryWithoutManifestFailsOpenAsCorrupt) {
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("no-sidecar");
  store.put(key, "payload");
  store.clear_memory();
  std::filesystem::remove(store.manifest_path(key));
  const int64_t before = obs::registry().counter("cache.corrupt").value();
  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(obs::registry().counter("cache.corrupt").value(), before + 1);
  // rw mode scrubs the damaged pair so a recompute can re-register it.
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
  obs::set_enabled(false);
}

TEST_F(CacheDirFixture, ManifestWriteFailureDowngradesToFullEntryMiss) {
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey key = key_of("sidecar-blocked");
  // Occupy the sidecar path with a directory: the atomic rename cannot
  // land, so the put must skip the entry file too — the disk tier never
  // holds an entry without provenance.
  std::filesystem::create_directories(store.manifest_path(key));
  const int64_t before = obs::registry().counter("cache.manifest.fail").value();
  store.put(key, "payload");
  EXPECT_EQ(obs::registry().counter("cache.manifest.fail").value(), before + 1);
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(key)));
  store.clear_memory();
  EXPECT_FALSE(store.get(key).has_value());
  obs::set_enabled(false);
}

TEST_F(CacheDirFixture, MemoryTierBytesIncludeManifestSidecar) {
  Store& store = Store::global();
  const CacheKey key = key_of("bytes");
  store.put(key, "0123456789");  // outside a scope: empty manifest, still encoded
  const std::string image = encode_manifest(Manifest{key, {}, {}, 0});
  EXPECT_EQ(store.memory_bytes(), 10u + image.size());
}

TEST_F(CacheDirFixture, LruBudgetCountsManifestBytes) {
  Store store(Store::Options{/*max_memory_bytes=*/256, /*max_memory_entries=*/64,
                             /*disk_dir=*/dir_});
  Tracked scope;
  for (int i = 0; i < 6; ++i)
    scope.facet({"tech", "corner-" + std::to_string(i),
                 std::string(64, static_cast<char>('a' + i))});
  // Six 16-byte payloads (96 bytes) fit the budget on their own; their
  // sidecars (several hundred bytes each) do not, so the byte-accounting
  // fix must evict.
  for (int i = 0; i < 6; ++i)
    store.put(key_of("lru-manifest-" + std::to_string(i)), std::string(16, 'x'));
  EXPECT_LE(store.memory_bytes(), 256u);
  EXPECT_LT(store.memory_entries(), 6u);
}

TEST(DirtyCone, DirectFacetMatchAndUpstreamPropagation) {
  Manifest fit_nom;
  fit_nom.key = fill_key("fit", 'a');
  fit_nom.facets = {{"tech", "65nm@nominal", "hash-old"},
                    {"corner", "nominal", "id-nom"}};
  Manifest fit_ss;
  fit_ss.key = fill_key("fit", 'b');
  fit_ss.facets = {{"tech", "65nm@ss", "hash-ss"}, {"corner", "ss", "id-ss"}};
  Manifest buf;
  buf.key = fill_key("buffering", 'c');
  buf.facets = {{"params", "buffering", "p"}};
  buf.upstream = {fit_nom.key};
  Manifest mc;
  mc.key = fill_key("yield", 'd');
  mc.facets = {{"corner", "nominal", "id-nom"}, {"samples", "mc", "500/2026"}};
  mc.upstream = {fit_nom.key};
  const std::vector<Manifest> manifests = {fit_nom, fit_ss, buf, mc};

  const auto contains = [](const std::vector<CacheKey>& keys, const CacheKey& k) {
    for (const CacheKey& key : keys)
      if (key.kind == k.kind && key.hex == k.hex) return true;
    return false;
  };

  // A nominal-corner tech edit dirties the fit directly and, through
  // upstream edges, the buffering search and Monte-Carlo run built on
  // it; the ss-corner fit is untouched.
  DirtyCone cone = dirty_cone(manifests, {{"tech", "65nm@nominal", "hash-NEW"}});
  EXPECT_EQ(cone.dirty.size(), 3u);
  EXPECT_TRUE(contains(cone.dirty, fit_nom.key));
  EXPECT_TRUE(contains(cone.dirty, buf.key));
  EXPECT_TRUE(contains(cone.dirty, mc.key));
  ASSERT_EQ(cone.reuse.size(), 1u);
  EXPECT_TRUE(contains(cone.reuse, fit_ss.key));

  // Same (type, name, id) is an unchanged input: nothing is dirty.
  cone = dirty_cone(manifests, {{"tech", "65nm@nominal", "hash-old"}});
  EXPECT_TRUE(cone.dirty.empty());
  EXPECT_EQ(cone.reuse.size(), 4u);

  // A single-corner retune dirties exactly that corner's cone.
  cone = dirty_cone(manifests, {{"corner", "ss", "id-ss-NEW"}});
  ASSERT_EQ(cone.dirty.size(), 1u);
  EXPECT_TRUE(contains(cone.dirty, fit_ss.key));

  // A (type, name) no manifest consumed is irrelevant to all of them.
  cone = dirty_cone(manifests, {{"corner", "ff", "whatever"}});
  EXPECT_TRUE(cone.dirty.empty());
  EXPECT_EQ(cone.reuse.size(), 4u);
}

TEST_F(CacheDirFixture, ScanManifestsAndEvictKeys) {
  Store& store = Store::global();
  CacheKey keys[3];
  for (int i = 0; i < 3; ++i) {
    Tracked scope;
    KeyBuilder kb("fit");
    kb.facet("tech", "t@c" + std::to_string(i), std::string(64, '0'));
    keys[i] = kb.finish();
    store.put(keys[i], "payload-" + std::to_string(i));
  }
  EXPECT_EQ(scan_manifests(dir_).size(), 3u);
  const size_t removed = evict_keys(store, {keys[0], keys[2]});
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(keys[0])));
  EXPECT_FALSE(std::filesystem::exists(store.manifest_path(keys[0])));
  EXPECT_FALSE(store.get(keys[0]).has_value());
  EXPECT_TRUE(store.get(keys[1]).has_value());
  EXPECT_EQ(scan_manifests(dir_).size(), 1u);
  // Evicting an absent key is a no-op, not an error.
  EXPECT_EQ(evict_keys(store, {keys[0]}), 0u);
}

TEST_F(CacheDirFixture, CacheStatsCensusPerKind) {
  Store& store = Store::global();
  store.put(fill_key("fit", '1'), "aaaa");
  store.put(fill_key("fit", '2'), "bbbbbbbb");
  store.put(fill_key("yield", '3'), "cc");
  const std::vector<KindStats> stats = cache_stats(dir_);
  ASSERT_EQ(stats.size(), 2u);  // kind-sorted
  EXPECT_EQ(stats[0].kind, "fit");
  EXPECT_EQ(stats[0].entries, 2u);
  EXPECT_GT(stats[0].payload_bytes, 0u);
  EXPECT_GT(stats[0].manifest_bytes, 0u);
  EXPECT_EQ(stats[1].kind, "yield");
  EXPECT_EQ(stats[1].entries, 1u);
}

TEST_F(CacheDirFixture, PruneRemovesOldestPairsFirst) {
  Store& store = Store::global();
  const CacheKey old_key = fill_key("fit", '1');
  const CacheKey new_key = fill_key("fit", '2');
  store.put(old_key, std::string(100, 'o'));
  store.put(new_key, std::string(100, 'n'));
  // Age the first pair well behind the second.
  const auto stale = std::filesystem::last_write_time(store.entry_path(new_key)) -
                     std::chrono::hours(1);
  std::filesystem::last_write_time(store.entry_path(old_key), stale);
  std::filesystem::last_write_time(store.manifest_path(old_key), stale);
  const size_t budget = std::filesystem::file_size(store.entry_path(new_key)) +
                        std::filesystem::file_size(store.manifest_path(new_key));
  const PruneResult pruned = prune_cache(dir_, budget);
  EXPECT_EQ(pruned.scanned_entries, 2u);
  EXPECT_EQ(pruned.removed_entries, 1u);
  EXPECT_LE(pruned.kept_bytes, budget);
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(old_key)));
  EXPECT_FALSE(std::filesystem::exists(store.manifest_path(old_key)));
  EXPECT_TRUE(std::filesystem::exists(store.entry_path(new_key)));
  // Pruning to zero empties the cache entirely.
  EXPECT_EQ(prune_cache(dir_, 0).removed_entries, 1u);
  EXPECT_TRUE(cache_stats(dir_).empty());
}

TEST_F(CacheDirFixture, VerifyScrubsOrphansAndCorruptPairs) {
  obs::set_enabled(true);
  Store& store = Store::global();
  const CacheKey good = fill_key("fit", '1');
  const CacheKey orphan = fill_key("fit", '2');
  const CacheKey bare = fill_key("fit", '3');
  const CacheKey corrupt = fill_key("fit", '4');
  for (const CacheKey* k : {&good, &orphan, &bare, &corrupt})
    store.put(*k, "payload");
  std::filesystem::remove(store.entry_path(orphan));     // manifest without entry
  std::filesystem::remove(store.manifest_path(bare));    // entry without manifest
  {
    std::ofstream out(store.manifest_path(corrupt), std::ios::trunc);
    out << "not a manifest\n";
  }
  const int64_t before = obs::registry().counter("cache.corrupt").value();
  const VerifyResult v = verify_cache(dir_);
  EXPECT_EQ(v.entries, 3u);
  EXPECT_EQ(v.manifests, 3u);
  EXPECT_EQ(v.orphan_manifests, 1u);
  EXPECT_EQ(v.unmanifested_entries, 1u);
  EXPECT_EQ(v.corrupt_manifests, 1u);
  EXPECT_EQ(v.scrubbed(), 3u);
  EXPECT_EQ(obs::registry().counter("cache.corrupt").value(), before + 3);
  // Only the consistent pair survives; a second pass is clean.
  EXPECT_TRUE(std::filesystem::exists(store.entry_path(good)));
  EXPECT_TRUE(std::filesystem::exists(store.manifest_path(good)));
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(bare)));
  EXPECT_FALSE(std::filesystem::exists(store.manifest_path(orphan)));
  EXPECT_FALSE(std::filesystem::exists(store.entry_path(corrupt)));
  EXPECT_EQ(verify_cache(dir_).scrubbed(), 0u);
  obs::set_enabled(false);
}

// End-to-end bit-identity of the cached flows, on a reduced deck so the
// cold pass stays fast. One fixture characterizes once; every case then
// proves warm == cold byte for byte.
class CachedFlowsFixture : public CacheDirFixture {
 protected:
  static CharacterizationOptions char_options() {
    CharacterizationOptions copt;
    copt.drives = {2, 8, 32};
    copt.buffers = false;
    return copt;
  }
  static CompositionOptions comp_options() {
    CompositionOptions comp;
    comp.drives = {8, 32};
    comp.segment_lengths = {0.5e-3, 1.5e-3};
    comp.input_slews = {50e-12, 300e-12};
    comp.chain_lengths = {1, 3};
    return comp;
  }
  static LinkContext ctx() {
    LinkContext c;
    c.length = 3 * mm;
    c.input_slew = 100 * ps;
    c.frequency = technology(TechNode::N65).clock_frequency;
    return c;
  }
};

TEST_F(CachedFlowsFixture, FitBufferingAndYieldHitsAreBitIdentical) {
  const TechnologyFit cold =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  // Fresh memory tier: the warm pass must come from the disk entry.
  Store::global().clear_memory();
  const TechnologyFit warm =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  EXPECT_EQ(write_fit(warm), write_fit(cold));

  // A different deck parameter is a different key — no false sharing.
  CompositionOptions other = comp_options();
  other.chain_lengths = {1, 2};
  const TechnologyFit refit =
      calibrated_fit(TechNode::N65, "", char_options(), other);
  EXPECT_NE(write_fit(refit), write_fit(cold));

  const ProposedModel model(technology(TechNode::N65), cold);
  BufferingOptions opt;
  opt.weight = 0.5;
  const BufferingResult buf_cold = optimize_buffering_cached(model, ctx(), opt);
  Store::global().clear_memory();
  const BufferingResult buf_warm = optimize_buffering_cached(model, ctx(), opt);
  EXPECT_EQ(buf_warm.feasible, buf_cold.feasible);
  EXPECT_EQ(buf_warm.design.kind, buf_cold.design.kind);
  EXPECT_EQ(buf_warm.design.drive, buf_cold.design.drive);
  EXPECT_EQ(buf_warm.design.num_repeaters, buf_cold.design.num_repeaters);
  EXPECT_EQ(buf_warm.cost, buf_cold.cost);  // EQ, not NEAR: bit-identical
  EXPECT_EQ(buf_warm.estimate.delay, buf_cold.estimate.delay);
  EXPECT_EQ(buf_warm.evaluations, buf_cold.evaluations);
  // The warm search ran zero model evaluations — it was a lookup.
  const BufferingResult direct = optimize_buffering(model, ctx(), opt);
  EXPECT_EQ(buf_warm.cost, direct.cost);

  LinkDesign design = buf_cold.design;
  const MonteCarloResult mc_cold =
      monte_carlo_link_cached(model, ctx(), design, 500, 2026);
  Store::global().clear_memory();
  const MonteCarloResult mc_warm =
      monte_carlo_link_cached(model, ctx(), design, 500, 2026);
  EXPECT_EQ(mc_warm.delays, mc_cold.delays);  // exact vector equality
  EXPECT_EQ(mc_warm.nominal_delay, mc_cold.nominal_delay);
  EXPECT_EQ(mc_warm.mean_delay, mc_cold.mean_delay);
  EXPECT_EQ(mc_warm.sigma_delay, mc_cold.sigma_delay);
  EXPECT_EQ(mc_warm.mean_power, mc_cold.mean_power);
  EXPECT_EQ(mc_warm.failed_samples, mc_cold.failed_samples);
  // And equals the uncached computation (the cache is transparent).
  const MonteCarloResult direct_mc = monte_carlo_link(model, ctx(), design, 500, 2026);
  EXPECT_EQ(mc_warm.delays, direct_mc.delays);

  // A different seed/sample-count is a different key.
  const MonteCarloResult other_seed =
      monte_carlo_link_cached(model, ctx(), design, 500, 2027);
  EXPECT_NE(other_seed.delays, mc_cold.delays);
}

TEST_F(CachedFlowsFixture, WrappersRecordProvenanceAndConesPropagate) {
  clear_artifact_registry();
  const TechnologyFit fit =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  const ProposedModel model(technology(TechNode::N65), fit);
  BufferingOptions opt;
  opt.weight = 0.5;
  const BufferingResult buf = optimize_buffering_cached(model, ctx(), opt);
  (void)monte_carlo_link_cached(model, ctx(), buf.design, 200, 2026);

  const std::vector<Manifest> manifests = scan_manifests(dir_);
  ASSERT_EQ(manifests.size(), 3u);
  const Manifest* fit_m = nullptr;
  const Manifest* buf_m = nullptr;
  const Manifest* mc_m = nullptr;
  for (const Manifest& m : manifests) {
    if (m.key.kind == "fit") fit_m = &m;
    if (m.key.kind == "buffering") buf_m = &m;
    if (m.key.kind == "yield") mc_m = &m;
  }
  ASSERT_NE(fit_m, nullptr);
  ASSERT_NE(buf_m, nullptr);
  ASSERT_NE(mc_m, nullptr);

  const auto facet_types = [](const Manifest& m) {
    std::vector<std::string> out;
    for (const Facet& f : m.facets) out.push_back(f.type);
    return out;
  };
  const auto has = [](const std::vector<std::string>& v, const char* s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  // The fit consumed the derated tech content and the corner identity.
  EXPECT_TRUE(has(facet_types(*fit_m), "tech"));
  EXPECT_TRUE(has(facet_types(*fit_m), "corner"));
  EXPECT_TRUE(has(facet_types(*fit_m), "format"));
  // Buffering and Monte-Carlo both derived from the cached fit: the
  // model signature's coefficient token resolved to its artifact key.
  ASSERT_EQ(buf_m->upstream.size(), 1u);
  EXPECT_EQ(buf_m->upstream[0].hex, fit_m->key.hex);
  ASSERT_EQ(mc_m->upstream.size(), 1u);
  EXPECT_EQ(mc_m->upstream[0].hex, fit_m->key.hex);
  EXPECT_TRUE(has(facet_types(*mc_m), "samples"));
  EXPECT_TRUE(has(facet_types(*mc_m), "corner"));

  // Unchanged inputs: the facets the live technology produces match the
  // ones the manifests recorded, so everything is reusable. This is the
  // consistency contract between fit_cache_key and technology_facets.
  DirtyCone cone =
      dirty_cone(manifests, technology_facets(technology(TechNode::N65)));
  EXPECT_TRUE(cone.dirty.empty());
  EXPECT_EQ(cone.reuse.size(), 3u);

  // A nominal-corner tech edit dirties the fit and drags the buffering
  // search and the Monte-Carlo run through the upstream edges.
  std::vector<Facet> edited;
  for (const Facet& f : fit_m->facets)
    if (f.type == "tech") edited.push_back({f.type, f.name, "edited:" + f.id});
  ASSERT_FALSE(edited.empty());
  cone = dirty_cone(manifests, edited);
  EXPECT_EQ(cone.dirty.size(), 3u);
  EXPECT_TRUE(cone.reuse.empty());

  // Retuning a corner this flow never touched dirties nothing.
  cone = dirty_cone(manifests, {{"corner", "ss", "retuned-id"}});
  EXPECT_TRUE(cone.dirty.empty());
}

// The incremental contract: after an edit invalidates a cone, the warm
// rerun rebuilds exactly the stale artifacts and the results are
// bit-identical to a cold rerun at ANY thread count. TSan builds
// (scripts/check_tsan.sh) run this with race detection.
TEST_F(CachedFlowsFixture, IncrementalRecomputeIsBitIdenticalAcrossThreads) {
  const TechnologyFit cold_fit =
      calibrated_fit(TechNode::N65, "", char_options(), comp_options());
  const ProposedModel cold_model(technology(TechNode::N65), cold_fit);
  BufferingOptions opt;
  opt.weight = 0.5;
  const BufferingResult cold_buf = optimize_buffering_cached(cold_model, ctx(), opt);
  const MonteCarloResult cold_mc =
      monte_carlo_link_cached(cold_model, ctx(), cold_buf.design, 200, 2026);

  for (const int threads : {1, 2, 8}) {
    exec::set_threads(threads);
    // Evict the full cone, as `pim cache invalidate` would after a tech
    // edit, then recompute warm.
    std::vector<CacheKey> stale;
    for (const Manifest& m : scan_manifests(dir_)) stale.push_back(m.key);
    evict_keys(Store::global(), stale);
    const TechnologyFit refit =
        calibrated_fit(TechNode::N65, "", char_options(), comp_options());
    EXPECT_EQ(write_fit(refit), write_fit(cold_fit)) << "threads=" << threads;
    const ProposedModel model(technology(TechNode::N65), refit);
    const BufferingResult rebuf = optimize_buffering_cached(model, ctx(), opt);
    EXPECT_EQ(rebuf.cost, cold_buf.cost) << "threads=" << threads;
    EXPECT_EQ(rebuf.design.num_repeaters, cold_buf.design.num_repeaters);
    EXPECT_EQ(rebuf.estimate.delay, cold_buf.estimate.delay);
    const MonteCarloResult remc =
        monte_carlo_link_cached(model, ctx(), rebuf.design, 200, 2026);
    EXPECT_EQ(remc.delays, cold_mc.delays) << "threads=" << threads;
    EXPECT_EQ(remc.mean_delay, cold_mc.mean_delay);
    EXPECT_EQ(remc.sigma_delay, cold_mc.sigma_delay);
  }
  exec::set_threads(0);
}

}  // namespace
}  // namespace pim::cache
