// Tests for pim::charlib — sizing, area quantization, simulated cell
// characterization, and the regression fits the paper's models rest on.
// The characterization runs real transistor-level simulations, so the
// fixture trims the sweep axes to keep the suite fast.
#include <gtest/gtest.h>

#include <memory>

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "exec/engine.hpp"
#include "liberty/library.hpp"
#include "numeric/regression.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

CharacterizationOptions fast_options() {
  CharacterizationOptions opt;
  opt.slew_axis = {20 * ps, 100 * ps, 300 * ps};
  opt.fanout_axis = {2.0, 8.0, 20.0};
  opt.drives = {2, 8, 32};
  return opt;
}

TEST(Sizing, WidthsScaleWithDrive) {
  const Technology& t = technology(TechNode::N65);
  const RepeaterSizing s4 = repeater_sizing(t, CellKind::Inverter, 4);
  const RepeaterSizing s8 = repeater_sizing(t, CellKind::Inverter, 8);
  EXPECT_DOUBLE_EQ(s8.wn_out, 2.0 * s4.wn_out);
  EXPECT_DOUBLE_EQ(s4.wp_out, t.pn_ratio * s4.wn_out);
  EXPECT_DOUBLE_EQ(s4.wn_in, 0.0);  // inverter has one stage
}

TEST(Sizing, BufferFirstStageIsQuarter) {
  const Technology& t = technology(TechNode::N65);
  const RepeaterSizing s16 = repeater_sizing(t, CellKind::Buffer, 16);
  EXPECT_DOUBLE_EQ(s16.wn_in, t.drive_nmos_width(4));
  const RepeaterSizing s2 = repeater_sizing(t, CellKind::Buffer, 2);
  EXPECT_DOUBLE_EQ(s2.wn_in, t.drive_nmos_width(1));  // floor at one unit
  EXPECT_THROW(repeater_sizing(t, CellKind::Inverter, 0), Error);
}

TEST(GoldenArea, MonotonicStaircase) {
  const Technology& t = technology(TechNode::N90);
  double prev = 0.0;
  for (int d = 1; d <= 64; d *= 2) {
    const RepeaterSizing s = repeater_sizing(t, CellKind::Inverter, d);
    const double a = golden_cell_area(t, s.wn_out, s.wp_out);
    EXPECT_GE(a, prev);
    prev = a;
  }
  // Minimum cell still has nonzero area (two contact pitches of width).
  EXPECT_GT(golden_cell_area(t, 0.1 * um, 0.2 * um),
            t.area.row_height * t.area.contact_pitch);
}

// Characterize once, share across tests (simulation is the slow part).
class CharacterizedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = &technology(TechNode::N65);
    CharacterizationOptions opt = fast_options();
    library_ = new CellLibrary(characterize_library(*tech_, opt));
    fit_ = new TechnologyFit(fit_technology(*tech_, *library_));
  }
  static void TearDownTestSuite() {
    delete library_;
    delete fit_;
    library_ = nullptr;
    fit_ = nullptr;
  }

  static const Technology* tech_;
  static CellLibrary* library_;
  static TechnologyFit* fit_;
};

const Technology* CharacterizedFixture::tech_ = nullptr;
CellLibrary* CharacterizedFixture::library_ = nullptr;
TechnologyFit* CharacterizedFixture::fit_ = nullptr;

TEST_F(CharacterizedFixture, LibraryHasAllRequestedCells) {
  EXPECT_EQ(library_->cells().size(), 6u);  // 3 drives x {INV, BUF}
  EXPECT_TRUE(library_->has_cell("INVD8"));
  EXPECT_TRUE(library_->has_cell("BUFD32"));
}

TEST_F(CharacterizedFixture, DelayMonotonicInLoadAndSlew) {
  const RepeaterCell& c = library_->cell("INVD8");
  const TimingTable& t = c.fall;
  for (size_t i = 0; i < t.slew_axis.size(); ++i)
    for (size_t j = 1; j < t.load_axis.size(); ++j)
      EXPECT_GT(t.delay(i, j), t.delay(i, j - 1));
  for (size_t j = 0; j < t.load_axis.size(); ++j)
    for (size_t i = 1; i < t.slew_axis.size(); ++i)
      EXPECT_GT(t.delay(i, j), t.delay(i - 1, j));
}

TEST_F(CharacterizedFixture, OutputSlewMonotonicInLoad) {
  const RepeaterCell& c = library_->cell("INVD2");
  for (const TimingTable* t : {&c.rise, &c.fall})
    for (size_t i = 0; i < t->slew_axis.size(); ++i)
      for (size_t j = 1; j < t->load_axis.size(); ++j)
        EXPECT_GT(t->out_slew(i, j), t->out_slew(i, j - 1));
}

TEST_F(CharacterizedFixture, InputCapMatchesDeviceCaps) {
  // The measured input capacitance should equal the lumped gate caps the
  // netlist builder attaches (the measurement integrates real charge).
  for (const char* name : {"INVD2", "INVD8", "INVD32"}) {
    const RepeaterCell& c = library_->cell(name);
    const double analytic = c.wn * tech_->nmos.c_gate + c.wp * tech_->pmos.c_gate;
    EXPECT_NEAR(c.input_cap, analytic, 0.05 * analytic) << name;
  }
}

TEST_F(CharacterizedFixture, BufferInputCapSmallerThanInverterSameDrive) {
  // Buffer input pin is its quarter-size first stage.
  EXPECT_LT(library_->cell("BUFD8").input_cap, library_->cell("INVD8").input_cap);
}

TEST_F(CharacterizedFixture, LargerDrivesAreFasterAtFixedLoad) {
  const double slew = 100 * ps;
  const double load = 50 * fF;
  const double d2 = library_->cell("INVD2").worst_delay(slew, load);
  const double d8 = library_->cell("INVD8").worst_delay(slew, load);
  const double d32 = library_->cell("INVD32").worst_delay(slew, load);
  EXPECT_GT(d2, d8);
  EXPECT_GT(d8, d32);
}

TEST_F(CharacterizedFixture, LeakageScalesWithDrive) {
  const double l2 = library_->cell("INVD2").leakage_avg();
  const double l32 = library_->cell("INVD32").leakage_avg();
  EXPECT_NEAR(l32 / l2, 16.0, 0.5);
  EXPECT_GT(l2, 0.0);
}

// ------------------------------------------------------------- the fits

TEST_F(CharacterizedFixture, GammaRecoversGateCapDensity) {
  // With equal n/p gate-cap density the zero-intercept fit must land on it.
  EXPECT_NEAR(fit_->gamma, tech_->nmos.c_gate, 0.05 * tech_->nmos.c_gate);
}

TEST_F(CharacterizedFixture, IntrinsicDelayGrowsWithSlewAndFitsQuadratic) {
  // Paper Fig. 1: intrinsic delay depends strongly on input slew and the
  // quadratic regression captures it tightly. (Our golden device bends
  // the curve the other way — see the documented deviation in fit.hpp —
  // but the magnitude and quality of the fit are what the models need.)
  for (const RepeaterEdgeFit* f : {&fit_->inv_rise, &fit_->inv_fall}) {
    EXPECT_GT(f->a0, 0.0);
    const double i_fast = f->a0 + f->a1 * 20 * ps + f->a2 * (20 * ps) * (20 * ps);
    const double i_slow = f->a0 + f->a1 * 300 * ps + f->a2 * (300 * ps) * (300 * ps);
    EXPECT_GT(i_slow, 2.0 * i_fast);
    EXPECT_GT(f->r2_intrinsic, 0.95);
  }
}

TEST_F(CharacterizedFixture, IntrinsicDelayIndependentOfSize) {
  // Paper Fig. 1's headline: the zero-load delay intercept is the same
  // for every repeater size. Extract it per cell and compare.
  const double slew = 100 * ps;
  Vector intercepts;
  for (const char* name : {"INVD2", "INVD8", "INVD32"}) {
    const RepeaterCell& c = library_->cell(name);
    const TimingTable& t = c.fall;
    // Linear extrapolation of delay to zero load at the middle slew row.
    Vector d(t.load_axis.size());
    for (size_t j = 0; j < t.load_axis.size(); ++j) d[j] = t.eval_delay(slew, t.load_axis[j]);
    const LinearFit line = fit_linear(t.load_axis, d);
    intercepts.push_back(line.intercept);
  }
  for (double i : intercepts)
    EXPECT_NEAR(i, intercepts.front(), 0.08 * intercepts.front());
}

TEST_F(CharacterizedFixture, DriveResistancePositiveAndSlewDependent) {
  for (const RepeaterEdgeFit* f : {&fit_->inv_rise, &fit_->inv_fall}) {
    EXPECT_GT(f->rho0, 0.0);
    EXPECT_GT(f->rho1, 0.0);  // rd grows with input slew
    EXPECT_GT(f->r2_drive_res, 0.7);
  }
  // rd halves when size doubles.
  const double rd8 = fit_->inv_fall.drive_resistance(100 * ps, 8 * tech_->unit_nmos_width);
  const double rd16 = fit_->inv_fall.drive_resistance(100 * ps, 16 * tech_->unit_nmos_width);
  EXPECT_NEAR(rd8 / rd16, 2.0, 1e-9);
}

TEST_F(CharacterizedFixture, LeakageFitIsLinearInWidth) {
  const RepeaterCell& c = library_->cell("INVD8");
  EXPECT_NEAR(fit_->leakage.eval_nmos(c.wn), c.leakage_nmos, 0.1 * c.leakage_nmos);
  EXPECT_NEAR(fit_->leakage.eval_pmos(c.wp), c.leakage_pmos, 0.1 * c.leakage_pmos);
}

TEST_F(CharacterizedFixture, AreaFitWithinPaperTolerance) {
  // Paper reports the linear area model within 8 % of library values.
  for (const char* name : {"INVD2", "INVD8", "INVD32"}) {
    const RepeaterCell& c = library_->cell(name);
    const double predicted = fit_->area0 + fit_->area1 * c.wn;
    EXPECT_NEAR(predicted, c.area, 0.15 * c.area) << name;
  }
}

TEST_F(CharacterizedFixture, FittedDelayModelTracksTables) {
  // The closed-form model must reproduce the characterization data it was
  // fitted from within a modest tolerance across the whole grid.
  for (const char* name : {"INVD2", "INVD8", "INVD32"}) {
    const RepeaterCell& c = library_->cell(name);
    for (const bool rising : {true, false}) {
      const TimingTable& t = rising ? c.rise : c.fall;
      const double wr = rising ? c.wp : c.wn;
      const RepeaterEdgeFit& f = fit_->edge_fit(CellKind::Inverter, rising);
      for (size_t i = 0; i < t.slew_axis.size(); ++i) {
        for (size_t j = 0; j < t.load_axis.size(); ++j) {
          const double model = f.eval_delay(t.slew_axis[i], t.load_axis[j], wr);
          const double golden = t.delay(i, j);
          EXPECT_NEAR(model, golden, 0.25 * golden + 2 * ps)
              << name << " rising=" << rising << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST_F(CharacterizedFixture, FittedSlewModelTracksTables) {
  for (const char* name : {"INVD2", "INVD32"}) {
    const RepeaterCell& c = library_->cell(name);
    const TimingTable& t = c.fall;
    const RepeaterEdgeFit& f = fit_->edge_fit(CellKind::Inverter, false);
    for (size_t i = 0; i < t.slew_axis.size(); ++i) {
      for (size_t j = 0; j < t.load_axis.size(); ++j) {
        const double model = f.eval_out_slew(t.slew_axis[i], t.load_axis[j], c.wn);
        const double golden = t.out_slew(i, j);
        EXPECT_NEAR(model, golden, 0.35 * golden + 3 * ps) << name;
      }
    }
  }
}

TEST_F(CharacterizedFixture, BufferFitsExistAndDiffer) {
  EXPECT_GT(fit_->buf_rise.a0, fit_->inv_rise.a0);  // extra first-stage delay
  EXPECT_GT(fit_->buf_fall.rho0, 0.0);
}

TEST_F(CharacterizedFixture, CoefficientsMatchCheckedInReference) {
  // Regression guard: these reference values were produced by this same
  // trimmed characterization at 65 nm. A drift beyond a few percent means
  // the device model, the extraction, the measurement conventions, or the
  // regression changed behavior — which must be a deliberate decision.
  EXPECT_NEAR(fit_->gamma, 0.9e-9, 0.03e-9);                 // 0.90 fF/um
  EXPECT_NEAR(fit_->inv_fall.rho0, 678e-6, 0.05 * 678e-6);   // ohm*m
  EXPECT_NEAR(fit_->inv_fall.rho1, 2.29e6, 0.08 * 2.29e6);   // ohm*m/s
  EXPECT_NEAR(fit_->inv_fall.a0, 2.23e-12, 0.4e-12);
  EXPECT_NEAR(fit_->leakage.n1, 0.0427, 0.15 * 0.0427);      // W/m (42.7 nW/um)
}

// The batched compiled-plan sweep must reproduce the scalar reference
// engine's tables bit-for-bit, at any thread count (docs/kernels.md).
TEST(BatchedSweep, TablesBitIdenticalToReferenceEngineAtAnyThreadCount) {
  const Technology& tech = technology(TechNode::N65);
  CharacterizationOptions ref_opt = fast_options();
  ref_opt.reference_engine = true;
  const RepeaterCell ref = characterize_cell(tech, CellKind::Buffer, 8, ref_opt);

  const CharacterizationOptions batched = fast_options();
  for (int threads : {1, 2, 8}) {
    exec::set_threads(threads);
    const RepeaterCell cell = characterize_cell(tech, CellKind::Buffer, 8, batched);
    EXPECT_EQ(cell.input_cap, ref.input_cap) << threads;
    const TimingTable* got[2] = {&cell.rise, &cell.fall};
    const TimingTable* want[2] = {&ref.rise, &ref.fall};
    for (int e = 0; e < 2; ++e)
      for (size_t i = 0; i < want[e]->slew_axis.size(); ++i)
        for (size_t j = 0; j < want[e]->load_axis.size(); ++j) {
          EXPECT_EQ(got[e]->delay(i, j), want[e]->delay(i, j))
              << threads << " " << e << " " << i << "," << j;
          EXPECT_EQ(got[e]->out_slew(i, j), want[e]->out_slew(i, j))
              << threads << " " << e << " " << i << "," << j;
        }
  }
  exec::set_threads(0);
}

TEST(FitValidation, RequiresEnoughCells) {
  const Technology& t = technology(TechNode::N90);
  CellLibrary lib("x", t.node, t.vdd);
  EXPECT_THROW(fit_technology(t, lib), Error);
}

}  // namespace
}  // namespace pim
