// The wire codec contract (src/api/wire.hpp): one canonical JSON shape
// per facade struct, strict decoding, version gating before dispatch,
// the shared error envelope, and run_batch's per-item semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/pim_api.hpp"
#include "api/wire.hpp"
#include "deadline/deadline.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"

namespace pim::api {
namespace {

using wire::from_json;
using wire::to_json;

// Round-trip helper: serialize, parse back, serialize again. Any field
// the bind() pair drops or renames breaks the byte equality.
template <typename T>
std::string reserialized(const T& value) {
  const T back = from_json<T>(to_json(value), "test");
  return to_json(back);
}

template <typename T>
void expect_roundtrip(const T& value) {
  EXPECT_EQ(to_json(value), reserialized(value));
}

LinkSpec sample_link() {
  LinkSpec link;
  link.tech = "65nm";
  link.length_mm = 3.25;
  link.style = "DP";
  link.input_slew_ps = 85.5;
  link.drive = 8;
  link.repeaters = 4;
  link.coeffs_path = "/tmp/coeffs.pimfit";
  link.corner = "ss_vlow_hot";
  return link;
}

TEST(WireCodec, LinkSpecRoundTripsFieldByField) {
  const LinkSpec link = sample_link();
  const LinkSpec back = from_json<LinkSpec>(to_json(link), "test");
  EXPECT_EQ(back.tech, link.tech);
  EXPECT_EQ(back.length_mm, link.length_mm);
  EXPECT_EQ(back.style, link.style);
  EXPECT_EQ(back.input_slew_ps, link.input_slew_ps);
  EXPECT_EQ(back.drive, link.drive);
  EXPECT_EQ(back.repeaters, link.repeaters);
  EXPECT_EQ(back.coeffs_path, link.coeffs_path);
  EXPECT_EQ(back.corner, link.corner);
}

TEST(WireCodec, EveryRequestStructRoundTrips) {
  TechfileRequest techfile;
  techfile.tech = "45nm";
  techfile.deadline_ms = 250;
  expect_roundtrip(techfile);

  CharlibRequest charlib;
  charlib.tech = "65nm";
  charlib.drives = {2, 8, 32};
  charlib.want_fit = true;
  charlib.corner = "ff_vhigh_cold";
  expect_roundtrip(charlib);

  FitRequest fit;
  fit.tech = "32nm";
  fit.coeffs_path = "x.pimfit";
  fit.corner = "nominal";
  expect_roundtrip(fit);

  LinkEvalRequest evaluate;
  evaluate.link = sample_link();
  evaluate.golden = true;
  expect_roundtrip(evaluate);

  BufferRequest buffer;
  buffer.link = sample_link();
  buffer.weight = 0.75;
  buffer.budget_ps = 320.0;
  expect_roundtrip(buffer);

  YieldRequest yield;
  yield.link = sample_link();
  yield.samples = 2500;
  yield.seed = 42;
  expect_roundtrip(yield);

  NoiseRequest noise;
  noise.link = sample_link();
  expect_roundtrip(noise);

  TimerRequest timer;
  timer.link = sample_link();
  expect_roundtrip(timer);

  CornersRequest corners;
  corners.link = sample_link();
  corners.corners = "nominal,ss_vlow_hot";
  corners.target_period_ps = 444.0;
  expect_roundtrip(corners);

  ExportRequest exp;
  exp.link = sample_link();
  exp.want_deck = true;
  exp.want_spef = true;
  expect_roundtrip(exp);

  SynthesisRequest synthesis;
  synthesis.spec = "dvopd";
  synthesis.tech = "65nm";
  synthesis.model = "pamunuwa";
  synthesis.mesh = true;
  synthesis.rows = 3;
  synthesis.cols = 4;
  synthesis.want_dot = true;
  synthesis.coeffs_path = "c.pimfit";
  synthesis.corners = "all";
  expect_roundtrip(synthesis);

  InvalidateRequest invalidate;
  invalidate.tech = "65nm.tech";
  invalidate.apply = true;
  expect_roundtrip(invalidate);

  CacheAdminRequest cache;
  cache.action = "prune";
  cache.budget_bytes = 1 << 20;
  expect_roundtrip(cache);
}

TEST(WireCodec, EveryResultStructRoundTrips) {
  TechfileResult techfile;
  techfile.text = "technology \"x\" {\n}\n";
  expect_roundtrip(techfile);

  CharlibResult charlib;
  charlib.liberty_text = "library(x) {}";
  charlib.fit_text = "fit v1";
  charlib.partial = true;
  expect_roundtrip(charlib);

  FitResult fit;
  fit.fit_text = "coeffs";
  expect_roundtrip(fit);

  LinkEvalResult evaluate;
  evaluate.tech_name = "65nm";
  evaluate.style_name = "SS";
  evaluate.repeaters = 3;
  evaluate.miller_factor = 1.51;
  evaluate.delay_ps = 231.75233747701827;  // shortest-round-trip doubles
  evaluate.output_slew_ps = 204.9;
  evaluate.power_mw = 0.1447;
  evaluate.area_um2 = 6.94;
  evaluate.has_golden = true;
  evaluate.golden_delay_ps = 229.9;
  evaluate.golden_slew_ps = 200.1;
  evaluate.golden_nodes = 1234;
  evaluate.model_error_pct = 0.8;
  expect_roundtrip(evaluate);

  BufferResult buffer;
  buffer.feasible = true;
  buffer.kind = "INV";
  buffer.drive = 16;
  buffer.repeaters = 5;
  buffer.miller_factor = 1.4;
  buffer.evaluations = 960;
  buffer.delay_ps = 301.0;
  buffer.power_mw = 0.2;
  buffer.area_um2 = 12.5;
  expect_roundtrip(buffer);

  YieldResult yield;
  yield.samples = 900;
  yield.failed_samples = 100;
  yield.requested_samples = 1000;
  yield.nominal_delay_ps = 250.0;
  yield.mean_delay_ps = 260.5;
  yield.sigma_delay_ps = 9.25;
  yield.p90_delay_ps = 272.0;
  yield.p99_delay_ps = 281.0;
  yield.yield_at_nominal = 0.31;
  yield.yield_ci95 = 0.028;
  yield.partial = true;
  expect_roundtrip(yield);

  NoiseResult noise;
  noise.tech_name = "65nm";
  noise.style_name = "SS";
  noise.golden_peak_mv = 101.0;
  noise.golden_peak_pct_vdd = 10.1;
  noise.model_peak_mv = 99.0;
  noise.model_error_pct = -2.0;
  expect_roundtrip(noise);

  TimerResult timer;
  timer.tech_name = "65nm";
  timer.repeaters = 2;
  timer.awe_delay_ps = 240.0;
  timer.awe_slew_ps = 210.0;
  timer.elmore_delay_ps = 265.0;
  timer.partial = false;
  expect_roundtrip(timer);

  CornersResult corners;
  corners.tech_name = "65nm";
  corners.style_name = "DP";
  corners.repeaters = 2;
  corners.target_period_ps = 444.0;
  corners.corners = {{"nominal", 240.0, 210.0, 204.0, 55.0},
                     {"ss_vlow_hot", 310.0, 280.0, 134.0, 66.0}};
  corners.worst_corner = "ss_vlow_hot";
  corners.worst_slack_ps = 134.0;
  const CornersResult corners_back =
      from_json<CornersResult>(to_json(corners), "test");
  ASSERT_EQ(corners_back.corners.size(), 2u);
  EXPECT_EQ(corners_back.corners[1].corner, "ss_vlow_hot");
  EXPECT_EQ(corners_back.corners[1].noise_peak_mv, 66.0);
  expect_roundtrip(corners);

  ExportResult exp;
  exp.deck_text = "* deck\n.end\n";
  exp.deck_nodes = 321;
  exp.spef_text = "*SPEF";
  expect_roundtrip(exp);

  SynthesisResult synthesis;
  synthesis.spec_name = "dvopd";
  synthesis.tech_name = "65nm";
  synthesis.model_name = "proposed";
  synthesis.dynamic_power_mw = 12.5;
  synthesis.leakage_power_mw = 2.5;
  synthesis.worst_link_delay_ps = 390.0;
  synthesis.delay_budget_ps = 444.0;
  synthesis.area_mm2 = 0.55;
  synthesis.num_links = 18;
  synthesis.num_routers = 9;
  synthesis.avg_hops = 1.8;
  synthesis.max_hops = 3;
  synthesis.merges_applied = 2;
  synthesis.partial = true;
  synthesis.dot_text = "digraph {}";
  expect_roundtrip(synthesis);

  InvalidateResult invalidate;
  invalidate.manifests = 40;
  invalidate.dirty_keys = 7;
  invalidate.reuse_keys = 33;
  invalidate.evicted = 7;
  invalidate.applied = true;
  invalidate.kinds = {{"charlib", 3, 10}, {"fit", 4, 23}};
  expect_roundtrip(invalidate);

  CacheAdminResult cache;
  cache.action = "stats";
  cache.dir = "/tmp/cache";
  cache.kinds = {{"charlib", 4, 1000, 200}};
  cache.total_bytes = 1200;
  cache.scanned_entries = 4;
  cache.removed_entries = 1;
  cache.removed_bytes = 100;
  cache.kept_bytes = 1100;
  cache.entries = 4;
  cache.manifests = 4;
  cache.orphan_manifests = 0;
  cache.unmanifested_entries = 0;
  cache.corrupt_manifests = 0;
  cache.scrubbed = 0;
  expect_roundtrip(cache);
}

TEST(WireCodec, AbsentFieldsKeepStructDefaults) {
  const LinkEvalRequest req =
      from_json<LinkEvalRequest>("{\"link\":{\"tech\":\"65nm\"}}", "test");
  EXPECT_EQ(req.api_version, kApiVersion);
  EXPECT_EQ(req.deadline_ms, 0);
  EXPECT_FALSE(req.golden);
  EXPECT_EQ(req.link.tech, "65nm");
  EXPECT_EQ(req.link.style, "SS");        // LinkSpec defaults survive too
  EXPECT_EQ(req.link.input_slew_ps, 100.0);
  EXPECT_EQ(req.link.drive, 12);
}

TEST(WireCodec, UnknownFieldIsRejectedAsBadInput) {
  try {
    from_json<TechfileRequest>("{\"tech\":\"65nm\",\"tch\":\"oops\"}", "test");
    FAIL() << "unknown field accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
    EXPECT_NE(std::string(e.what()).find("tch"), std::string::npos);
  }
}

TEST(WireCodec, DuplicateFieldIsRejectedAsBadInput) {
  EXPECT_THROW(
      from_json<TechfileRequest>("{\"tech\":\"a\",\"tech\":\"b\"}", "test"),
      Error);
}

TEST(WireCodec, TypeMismatchIsRejectedAsBadInput) {
  try {
    from_json<TechfileRequest>("{\"tech\":12}", "test");
    FAIL() << "type mismatch accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
  }
  // Integer fields reject fractional numbers instead of truncating.
  EXPECT_THROW(from_json<YieldRequest>(
                   "{\"link\":{\"tech\":\"x\"},\"samples\":2.5}", "test"),
               Error);
}

TEST(WireEnvelope, RequestLineRoundTripsWithIdentity) {
  LinkEvalRequest req;
  req.link = sample_link();
  const std::string line = wire::write_request_line(7, AnyRequest(req));
  const wire::RequestLine parsed = wire::parse_request_line(line);
  EXPECT_TRUE(parsed.has_id);
  EXPECT_EQ(parsed.id, 7);
  EXPECT_EQ(parsed.op, "evaluate");
  EXPECT_FALSE(parsed.is_batch);
  // Re-serializing the parsed request reproduces the canonical line.
  EXPECT_EQ(wire::write_request_line(parsed.id, parsed.request), line);
}

TEST(WireEnvelope, BatchLineRoundTrips) {
  BatchRequest batch;
  batch.deadline_ms = 500;
  TechfileRequest t;
  t.tech = "45nm";
  batch.items.emplace_back(t);
  LinkEvalRequest e;
  e.link = sample_link();
  batch.items.emplace_back(e);
  const std::string line = wire::write_request_line(9, batch);
  const wire::RequestLine parsed = wire::parse_request_line(line);
  EXPECT_TRUE(parsed.is_batch);
  EXPECT_EQ(parsed.op, wire::kBatchOp);
  EXPECT_EQ(parsed.batch.deadline_ms, 500);
  ASSERT_EQ(parsed.batch.items.size(), 2u);
  EXPECT_EQ(wire::op_of(parsed.batch.items[0]), "techfile");
  EXPECT_EQ(wire::op_of(parsed.batch.items[1]), "evaluate");
  EXPECT_EQ(wire::write_request_line(9, parsed.batch), line);
}

TEST(WireEnvelope, UnknownOpListsTheValidOnes) {
  try {
    wire::parse_request_line("{\"op\":\"frobnicate\"}");
    FAIL() << "unknown op accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
    EXPECT_NE(std::string(e.what()).find("evaluate"), std::string::npos);
  }
}

TEST(WireEnvelope, NestedBatchIsRejected) {
  EXPECT_THROW(wire::parse_request_line(
                   "{\"op\":\"batch\",\"items\":[{\"op\":\"batch\",\"items\":[]}]}"),
               Error);
}

TEST(WireEnvelope, ApiVersionIsValidatedBeforeDispatch) {
  // An unknown op WITH a bad version still reports the version problem
  // at parse time for known ops; dispatch never runs (the tech does not
  // exist, so dispatch would fail differently).
  try {
    wire::parse_request_line(
        "{\"op\":\"techfile\",\"api_version\":999,\"tech\":\"no-such-tech\"}");
    FAIL() << "future api_version accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
    EXPECT_NE(std::string(e.what()).find("api_version"), std::string::npos);
  }
}

TEST(WireErrors, ErrorEnvelopeCarriesCodeExitCodeAndContext) {
  Error error("something broke", ErrorCode::singular_matrix);
  const std::string json =
      wire::error_to_json(Error(error).with_context("while testing"));
  const obs::JsonValue v = obs::parse_json(json);
  EXPECT_EQ(v.find("code")->text, "singular_matrix");
  EXPECT_EQ(v.find("exit_code")->number, 3.0);
  EXPECT_NE(v.find("message")->text.find("something broke"), std::string::npos);
  ASSERT_EQ(v.find("context")->items.size(), 1u);
  EXPECT_EQ(v.find("context")->items[0].text, "while testing");
}

TEST(WireErrors, ExitCodeContractMatchesTheCli) {
  EXPECT_EQ(wire::exit_code_for(ErrorCode::bad_input), 2);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::internal), 4);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::deadline_exceeded), 5);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::cancelled), 5);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::io_parse), 3);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::overloaded), 3);
  EXPECT_EQ(wire::exit_code_for(ErrorCode::singular_matrix), 3);
}

TEST(WireExecute, MalformedLineBecomesTypedErrorResponse) {
  const std::string response = wire::execute_line("this is not json");
  const obs::JsonValue v = obs::parse_json(response);
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->text, "bad_input");
  EXPECT_EQ(v.find("error")->find("exit_code")->number, 2.0);
}

TEST(WireExecute, ErrorResponseEchoesTheRequestId) {
  const std::string response =
      wire::execute_line("{\"op\":\"techfile\",\"id\":31,\"tech\":\"no-such\"}");
  const obs::JsonValue v = obs::parse_json(response);
  EXPECT_EQ(v.find("id")->number, 31.0);
  EXPECT_EQ(v.find("op")->text, "techfile");
  EXPECT_FALSE(v.find("ok")->boolean);
}

TEST(WireExecute, RepeatLinesAreByteIdentical) {
  const std::string line = "{\"op\":\"techfile\",\"id\":1,\"tech\":\"65nm\"}";
  const std::string first = wire::execute_line(line);
  const std::string second = wire::execute_line(line);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
}

TEST(RunBatch, ResultsAreOrderPreservingAndPerItem) {
  BatchRequest batch;
  TechfileRequest good;
  good.tech = "65nm";
  TechfileRequest bad;
  bad.tech = "no-such-tech";
  TechfileRequest good2;
  good2.tech = "45nm";
  batch.items.emplace_back(good);
  batch.items.emplace_back(bad);
  batch.items.emplace_back(good2);
  const Expected<BatchResult> out = run_batch(batch);
  ASSERT_TRUE(out.ok());
  const BatchResult& result = out.value();
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.failed, 1);
  EXPECT_FALSE(result.partial);
  ASSERT_TRUE(result.items[0].ok());
  EXPECT_FALSE(result.items[1].ok());  // one bad item never kills the batch
  ASSERT_TRUE(result.items[2].ok());
  EXPECT_NE(std::get<TechfileResult>(result.items[0].value()).text.find("65nm"),
            std::string::npos);
  EXPECT_NE(std::get<TechfileResult>(result.items[2].value()).text.find("45nm"),
            std::string::npos);
}

TEST(RunBatch, EmptyBatchSucceedsTrivially) {
  const Expected<BatchResult> out = run_batch(BatchRequest{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().items.empty());
  EXPECT_EQ(out.value().failed, 0);
  EXPECT_FALSE(out.value().partial);
}

TEST(RunBatch, VersionMismatchRejectsTheWholeBatch) {
  BatchRequest batch;
  batch.api_version = 999;
  TechfileRequest t;
  t.tech = "65nm";
  batch.items.emplace_back(t);
  const Expected<BatchResult> out = run_batch(batch);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code(), ErrorCode::bad_input);
}

TEST(RunBatch, PendingCancelTruncatesWithStopErrorsPerItem) {
  deadline::reset();
  deadline::request_cancel();
  BatchRequest batch;
  TechfileRequest t;
  t.tech = "65nm";
  batch.items.emplace_back(t);
  batch.items.emplace_back(t);
  const Expected<BatchResult> out = run_batch(batch);
  deadline::reset();
  ASSERT_TRUE(out.ok());  // the batch itself returns gracefully
  const BatchResult& result = out.value();
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.failed, 2);
  ASSERT_EQ(result.items.size(), 2u);
  for (const Expected<AnyResult>& item : result.items) {
    ASSERT_FALSE(item.ok());
    EXPECT_EQ(item.error().code(), ErrorCode::cancelled);
    EXPECT_NE(std::string(item.error().what()).find("never started"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace pim::api
