// Unit tests for pim::util — units, errors, strings, tables, CSV, RNG.
#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

TEST(Units, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(unit::to_ps(5.0 * unit::ps), 5.0);
  EXPECT_DOUBLE_EQ(unit::to_fF(2.5 * unit::fF), 2.5);
  EXPECT_DOUBLE_EQ(unit::to_mm(15.0 * unit::mm), 15.0);
  EXPECT_DOUBLE_EQ(unit::to_mW(3.0 * unit::mW), 3.0);
  EXPECT_DOUBLE_EQ(unit::to_GHz(2.25 * unit::GHz), 2.25);
  EXPECT_DOUBLE_EQ(unit::to_um2(7.0 * unit::um2), 7.0);
}

TEST(Units, RelativeMagnitudes) {
  EXPECT_LT(unit::ps, unit::ns);
  EXPECT_LT(unit::fF, unit::pF);
  EXPECT_LT(unit::nm, unit::um);
  EXPECT_GT(unit::GHz, unit::MHz);
}

TEST(Error, RequireThrowsOnlyWhenFalse) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "boom"), Error);
  try {
    require(false, "specific message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.message(), "specific message");
    // what() appends the taxonomy code (internal when unspecified).
    EXPECT_STREQ(e.what(), "specific message [internal]");
  }
}

TEST(Error, CarriesTaxonomyCode) {
  try {
    fail("cannot invert", ErrorCode::singular_matrix);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::singular_matrix);
    EXPECT_STREQ(e.what(), "cannot invert [singular_matrix]");
  }
  EXPECT_STREQ(error_code_name(ErrorCode::bad_input), "bad_input");
  EXPECT_STREQ(error_code_name(ErrorCode::io_parse), "io_parse");
}

TEST(Error, ContextChainRendersInnermostFirst) {
  const Error root("pivot vanished", ErrorCode::singular_matrix);
  const Error chained =
      root.with_context("factoring the MNA system").with_context("characterizing INVD8");
  EXPECT_EQ(chained.code(), ErrorCode::singular_matrix);
  EXPECT_EQ(chained.message(), "pivot vanished");
  ASSERT_EQ(chained.context().size(), 2u);
  EXPECT_EQ(chained.context()[0], "factoring the MNA system");
  const std::string what = chained.what();
  const size_t factor_at = what.find("while factoring");
  const size_t char_at = what.find("while characterizing");
  ASSERT_NE(factor_at, std::string::npos);
  ASSERT_NE(char_at, std::string::npos);
  EXPECT_LT(factor_at, char_at);  // innermost first
}

TEST(Error, PimRequireCapturesCallSite) {
  try {
    PIM_REQUIRE(1 == 2, "impossible");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(e.message().find("impossible (test_util.cpp:"), std::string::npos);
    EXPECT_EQ(e.code(), ErrorCode::internal);
  }
  try {
    PIM_REQUIRE_CODE(false, "bad arg", ErrorCode::bad_input);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
  }
}

TEST(Expected, ValueAndErrorStates) {
  const Expected<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(7), 42);

  const Expected<int> bad = Error("nope", ErrorCode::no_convergence);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_EQ(bad.error().code(), ErrorCode::no_convergence);
  EXPECT_THROW(bad.value(), Error);

  Expected<std::string> moved = std::string("payload");
  EXPECT_EQ(moved.take(), "payload");
}

TEST(Expected, WithContextPreservesSuccessAndChainsFailure) {
  Expected<int> good = 1;
  EXPECT_TRUE(std::move(good).with_context("stage A").ok());

  Expected<int> bad = Error("root", ErrorCode::io_parse);
  const Expected<int> chained = std::move(bad).with_context("loading deck");
  ASSERT_FALSE(chained.ok());
  ASSERT_EQ(chained.error().context().size(), 1u);
  EXPECT_EQ(chained.error().context()[0], "loading deck");
}

TEST(ExpectedVoid, DefaultIsSuccess) {
  const Expected<void> ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_NO_THROW(ok.value());

  const Expected<void> bad = Error("broken", ErrorCode::internal);
  EXPECT_FALSE(bad.ok());
  EXPECT_THROW(bad.value(), Error);
  EXPECT_FALSE(Expected<void>(Error("x")).with_context("ctx").ok());
}

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(fail("x"), Error); }

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a, b , c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("a,,b", ',')[1], "");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = split_whitespace("  one\ttwo \n three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("liberty", "lib"));
  EXPECT_FALSE(starts_with("lib", "liberty"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("  -2e-3 "), -2e-3);
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.5x"), Error);
  EXPECT_THROW(parse_double(""), Error);
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long(" -7 "), -7);
  EXPECT_THROW(parse_long("4.2"), Error);
  EXPECT_THROW(parse_long(""), Error);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format_sig(0.00123456, 3), "0.00123");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, SeparatorRendered) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  // Two separators total: one under the header, one explicit.
  const std::string s = t.to_string();
  size_t count = 0;
  for (size_t pos = 0; (pos = s.find("-\n", pos)) != std::string::npos; ++pos) ++count;
  EXPECT_EQ(count, 2u);
}

TEST(Csv, QuotesSpecialCells) {
  CsvWriter w({"a", "b"});
  w.add_row({"x,y", "plain"});
  w.add_row({"with \"quote\"", "nl\nin"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"x,y\""), std::string::npos);
  EXPECT_NE(s.find("\"with \"\"quote\"\"\""), std::string::npos);
  EXPECT_EQ(w.row_count(), 2u);
}

TEST(Csv, ArityChecked) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.add_row({"1", "2"}), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, RoughlyUniformMean) {
  Rng r(42);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

}  // namespace
}  // namespace pim
