// Tests for pim::tech — technology descriptors, wire extraction physics,
// and tech-file round trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "cache/sha256.hpp"
#include "tech/techfile.hpp"
#include "tech/technology.hpp"
#include "tech/wire.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

TEST(Technology, SixNodesWithRoundTrippingNames) {
  const auto& nodes = all_tech_nodes();
  ASSERT_EQ(nodes.size(), 6u);
  for (TechNode n : nodes) {
    EXPECT_EQ(tech_node_from_name(tech_node_name(n)), n);
  }
  EXPECT_EQ(tech_node_from_name("65"), TechNode::N65);
  EXPECT_THROW(tech_node_from_name("28nm"), Error);
}

TEST(Technology, VddStepsUpFrom65To45) {
  // The paper's Table III discussion hinges on this library quirk.
  EXPECT_DOUBLE_EQ(technology(TechNode::N65).vdd, 1.0);
  EXPECT_DOUBLE_EQ(technology(TechNode::N45).vdd, 1.1);
  EXPECT_GT(technology(TechNode::N90).vdd, technology(TechNode::N65).vdd);
}

TEST(Technology, GeometryShrinksMonotonically) {
  double prev_width = 1.0;
  double prev_feature = 1.0;
  for (TechNode n : all_tech_nodes()) {
    const Technology& t = technology(n);
    EXPECT_LT(t.interconnect.global.width, prev_width);
    EXPECT_LT(t.area.feature_size, prev_feature);
    prev_width = t.interconnect.global.width;
    prev_feature = t.area.feature_size;
    // Intermediate layers are finer than global ones.
    EXPECT_LT(t.interconnect.intermediate.width, t.interconnect.global.width);
    // Barrier never consumes the conductor.
    EXPECT_LT(2.0 * t.interconnect.barrier_thickness, t.interconnect.global.width);
  }
}

TEST(Technology, DriveWidthsScale) {
  const Technology& t = technology(TechNode::N65);
  EXPECT_DOUBLE_EQ(t.drive_nmos_width(4), 4.0 * t.unit_nmos_width);
  EXPECT_DOUBLE_EQ(t.pmos_width(1.0 * um), t.pn_ratio * um);
}

TEST(WireResistivity, ScatteringRaisesRhoMoreAtSmallWidth) {
  const InterconnectTech& ic = technology(TechNode::N45).interconnect;
  WireModelOptions on;
  WireModelOptions off;
  off.scattering = false;
  const double rho_wide = effective_resistivity(ic, 400 * nm, on);
  const double rho_narrow = effective_resistivity(ic, 50 * nm, on);
  EXPECT_GT(rho_narrow, rho_wide);
  EXPECT_DOUBLE_EQ(effective_resistivity(ic, 50 * nm, off), ic.rho_bulk);
  EXPECT_GT(rho_narrow, 1.3 * ic.rho_bulk);  // strong effect at 50 nm
}

// Property: per-length resistance of the global wire grows monotonically
// as technology scales down, and each physical effect (scattering,
// barrier) only ever increases it.
class WireResistanceTest : public ::testing::TestWithParam<TechNode> {};

TEST_P(WireResistanceTest, EffectsOnlyIncreaseResistance) {
  const Technology& t = technology(GetParam());
  WireModelOptions full;
  WireModelOptions no_scatter = full;
  no_scatter.scattering = false;
  WireModelOptions no_barrier = full;
  no_barrier.barrier = false;
  WireModelOptions bare;
  bare.scattering = false;
  bare.barrier = false;
  const double r_full = wire_resistance_per_m(t, WireLayer::Global, full);
  EXPECT_GT(r_full, wire_resistance_per_m(t, WireLayer::Global, no_scatter));
  EXPECT_GT(r_full, wire_resistance_per_m(t, WireLayer::Global, no_barrier));
  EXPECT_GT(r_full, wire_resistance_per_m(t, WireLayer::Global, bare));
  // Intermediate wires are narrower, hence more resistive.
  EXPECT_GT(wire_resistance_per_m(t, WireLayer::Intermediate, full), r_full);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, WireResistanceTest,
                         ::testing::ValuesIn(all_tech_nodes()));

TEST(WireResistance, GrowsAcrossNodes) {
  double prev = 0.0;
  for (TechNode n : all_tech_nodes()) {
    const double r = wire_resistance_per_m(technology(n), WireLayer::Global, {});
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(WireExtraction, MagnitudesArePlausible) {
  // 65 nm global wiring: on the order of 100 ohm/mm and 100-400 fF/mm.
  const WireRc rc = extract_wire(technology(TechNode::N65), WireLayer::Global,
                                 DesignStyle::SingleSpacing);
  EXPECT_GT(rc.res_per_m, 30.0 / mm);
  EXPECT_LT(rc.res_per_m, 400.0 / mm);
  EXPECT_GT(rc.cap_total_per_m(), 80.0 * fF / mm);
  EXPECT_LT(rc.cap_total_per_m(), 600.0 * fF / mm);
  EXPECT_GT(rc.cap_couple_per_m, rc.cap_ground_per_m * 0.3);  // coupling matters
}

TEST(WireExtraction, ShieldingMovesCouplingToGround) {
  const Technology& t = technology(TechNode::N45);
  const WireRc ss = extract_wire(t, WireLayer::Global, DesignStyle::SingleSpacing);
  const WireRc sh = extract_wire(t, WireLayer::Global, DesignStyle::Shielded);
  EXPECT_DOUBLE_EQ(sh.cap_couple_per_m, 0.0);
  EXPECT_NEAR(sh.cap_ground_per_m, ss.cap_ground_per_m + 2.0 * ss.cap_couple_per_m,
              1e-18);
  EXPECT_GT(sh.pitch, ss.pitch);  // shields cost routing area
  EXPECT_DOUBLE_EQ(sh.res_per_m, ss.res_per_m);
}

TEST(WireExtraction, DoubleSpacingCutsCoupling) {
  const Technology& t = technology(TechNode::N45);
  const WireRc ss = extract_wire(t, WireLayer::Global, DesignStyle::SingleSpacing);
  const WireRc ds = extract_wire(t, WireLayer::Global, DesignStyle::DoubleSpacing);
  EXPECT_LT(ds.cap_couple_per_m, 0.6 * ss.cap_couple_per_m);
  EXPECT_GT(ds.pitch, ss.pitch);
}

TEST(WireExtraction, StyleNames) {
  EXPECT_EQ(design_style_name(DesignStyle::SingleSpacing), "SS");
  EXPECT_EQ(design_style_name(DesignStyle::DoubleSpacing), "DS");
  EXPECT_EQ(design_style_name(DesignStyle::Shielded), "SH");
}

// ---------------------------------------------------------------- techfile

class TechfileRoundTrip : public ::testing::TestWithParam<TechNode> {};

TEST_P(TechfileRoundTrip, WriteParsePreservesEverything) {
  const Technology& t = technology(GetParam());
  const Technology r = parse_techfile(write_techfile(t));
  EXPECT_EQ(r.node, t.node);
  EXPECT_EQ(r.name, t.name);
  EXPECT_DOUBLE_EQ(r.vdd, t.vdd);
  EXPECT_DOUBLE_EQ(r.pn_ratio, t.pn_ratio);
  EXPECT_DOUBLE_EQ(r.unit_nmos_width, t.unit_nmos_width);
  EXPECT_DOUBLE_EQ(r.clock_frequency, t.clock_frequency);
  EXPECT_DOUBLE_EQ(r.nmos.k_sat, t.nmos.k_sat);
  EXPECT_DOUBLE_EQ(r.nmos.vth, t.nmos.vth);
  EXPECT_DOUBLE_EQ(r.pmos.c_gate, t.pmos.c_gate);
  EXPECT_DOUBLE_EQ(r.interconnect.global.width, t.interconnect.global.width);
  EXPECT_DOUBLE_EQ(r.interconnect.intermediate.ild_height,
                   t.interconnect.intermediate.ild_height);
  EXPECT_DOUBLE_EQ(r.interconnect.barrier_thickness, t.interconnect.barrier_thickness);
  EXPECT_DOUBLE_EQ(r.area.row_height, t.area.row_height);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, TechfileRoundTrip,
                         ::testing::ValuesIn(all_tech_nodes()));

TEST(Techfile, RejectsMalformedInput) {
  EXPECT_THROW(parse_techfile(""), Error);
  EXPECT_THROW(parse_techfile("technology \"90nm\" {\n vdd 1.2\n"), Error);  // unterminated
  EXPECT_THROW(parse_techfile("nottech \"90nm\" {\n}\n"), Error);
  // Missing required field.
  std::string text = write_techfile(technology(TechNode::N90));
  const size_t pos = text.find("  vdd");
  text.erase(pos, text.find('\n', pos) - pos + 1);
  EXPECT_THROW(parse_techfile(text), Error);
}

TEST(Techfile, CommentsAndBlankLinesIgnored) {
  std::string text = write_techfile(technology(TechNode::N32));
  text.insert(0, "# a leading comment\n\n");
  const Technology r = parse_techfile(text);
  EXPECT_EQ(r.node, TechNode::N32);
}

TEST(Techfile, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/pim_techfile_test.tech";
  save_techfile(technology(TechNode::N22), path);
  const Technology r = load_techfile(path);
  EXPECT_EQ(r.node, TechNode::N22);
  EXPECT_THROW(load_techfile("/nonexistent/dir/x.tech"), Error);
}

TEST(TechHash, ContentHashMatchesTechfileBytesAndIsStable) {
  const Technology& t = technology(TechNode::N45);
  const std::string h = technology_content_hash(t);
  EXPECT_EQ(h, cache::sha256_hex(write_techfile(t)));
  // Registry instances memoize; the repeat answer must not drift.
  EXPECT_EQ(technology_content_hash(t), h);
  // A local (unregistered) copy hashes identically — the memo is a perf
  // shortcut for registry-stable instances, not a semantic change.
  Technology copy = t;
  EXPECT_EQ(technology_content_hash(copy), h);
  // Any content edit moves the hash.
  copy.vdd *= 1.01;
  EXPECT_NE(technology_content_hash(copy), h);
}

TEST(TechSpec, BuiltinNamesResolveToTheRegistry) {
  EXPECT_TRUE(is_builtin_tech_spec("45nm"));
  EXPECT_TRUE(is_builtin_tech_spec("45"));
  EXPECT_FALSE(is_builtin_tech_spec("44nm"));
  EXPECT_FALSE(is_builtin_tech_spec("/tmp/nope.tech"));
  // Builtin specs return the registry instance itself, so flows keyed on
  // either path share cache entries byte for byte.
  EXPECT_EQ(&technology_from_spec("45nm"), &technology(TechNode::N45));
  EXPECT_EQ(&technology_from_spec("45"), &technology(TechNode::N45));
  EXPECT_THROW(technology_from_spec("/nonexistent/dir/x.tech"), Error);
}

TEST(TechSpec, FileSpecsReloadOnEditAndMemoizeByContent) {
  const std::string path = testing::TempDir() + "/pim_tech_spec_test.tech";
  const Technology& base = technology(TechNode::N65);
  save_techfile(base, path);
  const Technology& a = technology_from_spec(path);
  EXPECT_EQ(technology_content_hash(a), technology_content_hash(base));
  // Unchanged content parses once: same stable reference on re-read.
  EXPECT_EQ(&a, &technology_from_spec(path));
  // An on-disk edit is picked up on the next resolution — this is what
  // `pim cache diff <edited.tech>` keys invalidation from.
  Technology edited = base;
  edited.nmos.vth *= 1.05;
  save_techfile(edited, path);
  const Technology& b = technology_from_spec(path);
  EXPECT_NE(&a, &b);
  EXPECT_NE(technology_content_hash(b), technology_content_hash(a));
  std::filesystem::remove(path);
}

TEST(TechFacets, PerCornerFacetsTrackDeratedContent) {
  const Technology& base = technology(TechNode::N45);
  const std::vector<cache::Facet> facets = technology_facets(base);
  const std::vector<Corner>& corners = base.scenario_set().corners();
  ASSERT_EQ(facets.size(), 2 * corners.size());
  // Per corner: a tech facet carrying the derated descriptor's content
  // hash, then a corner facet carrying the full-precision cache id.
  for (size_t i = 0; i < corners.size(); ++i) {
    const cache::Facet& tech_facet = facets[2 * i];
    const cache::Facet& corner_facet = facets[2 * i + 1];
    EXPECT_EQ(tech_facet.type, "tech");
    EXPECT_EQ(tech_facet.name, base.name + "@" + corners[i].name);
    EXPECT_EQ(tech_facet.id, technology_content_hash(base.derated(corners[i])));
    EXPECT_EQ(corner_facet.type, "corner");
    EXPECT_EQ(corner_facet.name, corners[i].name);
    EXPECT_EQ(corner_facet.id, corners[i].cache_id());
  }
  // A base edit moves every per-corner tech hash (the whole cone goes
  // stale); the corner ids stay put.
  Technology edited = base;
  edited.vdd *= 1.02;
  const std::vector<cache::Facet> after = technology_facets(edited);
  for (size_t i = 0; i < corners.size(); ++i) {
    EXPECT_NE(after[2 * i].id, facets[2 * i].id);
    EXPECT_EQ(after[2 * i + 1].id, facets[2 * i + 1].id);
  }
}

TEST(TechFacets, CornerRetuneMovesOnlyThatCornersCone) {
  // A techfile-defined corner set: the corners block must NOT feed the
  // per-corner content hashes (technology_content_hash strips it), or a
  // one-corner retune would shift every corner's tech facet and dirty
  // the whole cache instead of just that corner's cone.
  Technology base = technology(TechNode::N45);
  Corner slow;
  slow.name = "slow";
  slow.nmos_strength = 0.9;
  slow.pmos_strength = 0.9;
  base.corners = ScenarioSet({Corner{}, slow});
  const std::vector<cache::Facet> before = technology_facets(base);
  ASSERT_EQ(before.size(), 4u);  // nominal + slow, tech + corner each
  // Hash identity ignores the corner set: nominal's derated content is
  // the base itself, so its hash matches the builtin-set descriptor's.
  EXPECT_EQ(before[0].id, technology_content_hash(technology(TechNode::N45)));
  // Retune the slow corner only.
  Technology edited = base;
  slow.nmos_strength = 0.8;
  edited.corners = ScenarioSet({Corner{}, slow});
  const std::vector<cache::Facet> after = technology_facets(edited);
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after[0].id, before[0].id);  // nominal tech hash untouched
  EXPECT_EQ(after[1].id, before[1].id);  // nominal corner id untouched
  EXPECT_NE(after[2].id, before[2].id);  // slow derated content moved
  EXPECT_NE(after[3].id, before[3].id);  // slow cache_id moved
}

TEST(CornerTechnologyTest, BaseOverloadMatchesNodeOverloadAndIsStable) {
  const Technology& base = technology(TechNode::N45);
  const Corner& ss = base.scenario_set().corner("ss");
  const Technology& via_node = corner_technology(TechNode::N45, ss);
  const Technology& via_base = corner_technology(base, ss);
  // Content-identical through either path, so fits keyed on the derated
  // content are shared between TechNode and file-loaded flows.
  EXPECT_EQ(write_techfile(via_base), write_techfile(via_node));
  // Registry-stable: repeated resolution returns the same instance.
  EXPECT_EQ(&via_base, &corner_technology(base, ss));
}

}  // namespace
}  // namespace pim
