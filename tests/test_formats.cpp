// Tests for the EDA exchange formats: SPICE-deck write/parse round trips
// (including simulation equivalence) and SPEF-lite export/digest.
#include <gtest/gtest.h>

#include "spice/deck.hpp"
#include "spice/transient.hpp"
#include "sta/signoff.hpp"
#include "sta/spef.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

Circuit make_inverter_circuit() {
  const Technology& t = technology(TechNode::N65);
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_vsource(vdd, Waveform::dc(t.vdd));
  c.add_vsource(in, Waveform::ramp(0.0, t.vdd, 20 * ps, 80 * ps));
  c.add_inverter(t.devices(), 2 * um, 4 * um, in, out, vdd);
  c.add_capacitor(out, c.ground(), 20 * fF);
  c.add_resistor(out, c.ground(), 1 * Mohm);  // bleeder, exercises R cards
  return c;
}

TEST(Deck, RoundTripPreservesStructure) {
  const Circuit original = make_inverter_circuit();
  const std::string deck = write_deck(original);
  const Circuit reparsed = parse_deck(deck);

  EXPECT_EQ(reparsed.node_count(), original.node_count());
  ASSERT_EQ(reparsed.resistors().size(), original.resistors().size());
  ASSERT_EQ(reparsed.capacitors().size(), original.capacitors().size());
  ASSERT_EQ(reparsed.vsources().size(), original.vsources().size());
  ASSERT_EQ(reparsed.mosfets().size(), original.mosfets().size());
  EXPECT_DOUBLE_EQ(reparsed.mosfets()[0].width, original.mosfets()[0].width);
  EXPECT_DOUBLE_EQ(reparsed.mosfets()[1].params.k_sat, original.mosfets()[1].params.k_sat);
  EXPECT_EQ(reparsed.mosfets()[0].type, MosType::Nmos);
  EXPECT_EQ(reparsed.mosfets()[1].type, MosType::Pmos);
}

TEST(Deck, RoundTripSimulatesIdentically) {
  const Circuit original = make_inverter_circuit();
  const Circuit reparsed = parse_deck(write_deck(original));

  TransientOptions opt;
  opt.t_stop = 0.5 * ns;
  opt.dt = 1 * ps;
  // Node ids are preserved by construction order, so probing by id works.
  const NodeId out = 3;
  const TransientResult a = run_transient(original, opt, {out});
  const TransientResult b = run_transient(reparsed, opt, {out});
  ASSERT_EQ(a.time.size(), b.time.size());
  for (size_t i = 0; i < a.time.size(); ++i)
    EXPECT_NEAR(a.trace(out)[i], b.trace(out)[i], 1e-9);
}

TEST(Deck, SignoffNetlistExportsAndReparses) {
  const Technology& t = technology(TechNode::N65);
  LinkContext ctx;
  ctx.length = 1 * mm;
  LinkDesign d;
  d.drive = 8;
  d.num_repeaters = 2;
  const LinkNetlist net = build_link_netlist(t, ctx, d);
  const Circuit reparsed = parse_deck(write_deck(net.circuit));
  EXPECT_EQ(reparsed.node_count(), net.circuit.node_count());
  EXPECT_EQ(reparsed.mosfets().size(), net.circuit.mosfets().size());
  EXPECT_EQ(reparsed.capacitors().size(), net.circuit.capacitors().size());
}

TEST(Deck, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_deck(""), Error);  // missing .end
  EXPECT_NO_THROW(parse_deck("R1 a b 100\n.end\n"));
  EXPECT_THROW(parse_deck("X1 a b\n.end\n"), Error);         // unknown card
  EXPECT_THROW(parse_deck("M1 d g s nm w=1e-6\n.end\n"), Error);  // unknown model
  EXPECT_THROW(parse_deck("V1 n x DC 1\n.end\n"), Error);    // non-grounded source
  EXPECT_THROW(parse_deck("V1 n 0 PWL(1 2 3)\n.end\n"), Error);  // odd PWL
  EXPECT_THROW(parse_deck("R1 a b 100\n.end\nR2 c d 5\n"), Error);  // after .end
  EXPECT_THROW(parse_deck(".model nm alpha_power type=weird vth=1 k_sat=1 alpha=1 "
                          "k_vdsat=1 lambda=0 n_sub=1 c_gate=0 c_drain=0\n.end\n"),
               Error);
}

TEST(Deck, PwlWaveformRoundTrips) {
  Circuit c;
  const NodeId n = c.add_node("n");
  c.add_vsource(n, Waveform::pwl({0.0, 1e-10, 3e-10}, {0.0, 0.9, 0.2}));
  const Circuit r = parse_deck(write_deck(c));
  const Waveform& w = r.vsources()[0].wave;
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1e-10), 0.9);
  EXPECT_NEAR(w.value(2e-10), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(1.0), 0.2);
}

// ------------------------------------------------------------------ SPEF

TEST(Spef, TotalsMatchExtraction) {
  const Technology& t = technology(TechNode::N65);
  LinkContext ctx;
  ctx.length = 3 * mm;
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 3;
  const LinkGeometry g(t, ctx, d);

  const std::string spef = write_spef(t, ctx, d);
  const SpefDigest digest = digest_spef(spef);

  EXPECT_EQ(digest.nets, 3);
  // Per segment: npi resistances and (npi + 1) grounded + 2(npi + 1)
  // coupling caps.
  EXPECT_EQ(digest.res_entries, 3 * 6);
  EXPECT_EQ(digest.cap_entries, 3 * (7 + 2 * 7));
  EXPECT_NEAR(digest.total_res, 3 * g.seg_res, 1e-6 * digest.total_res);
  EXPECT_NEAR(digest.total_ground_cap, 3 * g.seg_cap_ground,
              1e-6 * digest.total_ground_cap);
  EXPECT_NEAR(digest.total_couple_cap, 3 * g.seg_cap_couple_total,
              1e-6 * digest.total_couple_cap);
}

TEST(Spef, ShieldedHasNoCouplingEntries) {
  const Technology& t = technology(TechNode::N45);
  LinkContext ctx;
  ctx.length = 2 * mm;
  ctx.style = DesignStyle::Shielded;
  LinkDesign d;
  d.num_repeaters = 2;
  const SpefDigest digest = digest_spef(write_spef(t, ctx, d));
  EXPECT_DOUBLE_EQ(digest.total_couple_cap, 0.0);
  EXPECT_GT(digest.total_ground_cap, 0.0);
}

TEST(Spef, HeaderAndStructurePresent) {
  const Technology& t = technology(TechNode::N90);
  LinkContext ctx;
  ctx.length = 1 * mm;
  LinkDesign d;
  SpefOptions opt;
  opt.design_name = "my_design";
  const std::string spef = write_spef(t, ctx, d, opt);
  EXPECT_NE(spef.find("*SPEF"), std::string::npos);
  EXPECT_NE(spef.find("*DESIGN \"my_design\""), std::string::npos);
  EXPECT_NE(spef.find("*D_NET victim_0"), std::string::npos);
  EXPECT_NE(spef.find("*CONN"), std::string::npos);
}

TEST(Spef, DigestRejectsMalformedInput) {
  EXPECT_THROW(digest_spef("*D_NET x 1\n*CAP\n1 2 3 4 5\n*END\n"), Error);
  EXPECT_THROW(digest_spef("*D_NET x 1\n"), Error);  // unterminated
  EXPECT_THROW(digest_spef("*CAP\n"), Error);        // cap outside a net
}

}  // namespace
}  // namespace pim
