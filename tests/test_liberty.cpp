// Tests for pim::liberty — cell containers, NLDM evaluation, and the
// Liberty-lite writer/parser round trip.
#include <gtest/gtest.h>

#include "liberty/libertyfile.hpp"
#include "liberty/library.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

TimingTable make_table(double scale) {
  TimingTable t;
  t.slew_axis = {10 * ps, 100 * ps};
  t.load_axis = {1 * fF, 10 * fF, 100 * fF};
  t.delay = Matrix(2, 3);
  t.out_slew = Matrix(2, 3);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      t.delay(i, j) = scale * (10 * ps + t.slew_axis[i] * 0.2 + t.load_axis[j] * 1e9);
      t.out_slew(i, j) = scale * (5 * ps + t.load_axis[j] * 2e9);
    }
  }
  return t;
}

RepeaterCell make_cell(CellKind kind, int drive) {
  RepeaterCell c;
  c.name = repeater_cell_name(kind, drive);
  c.kind = kind;
  c.drive = drive;
  c.wn = drive * 0.26 * um;
  c.wp = 2.0 * c.wn;
  c.input_cap = drive * 0.7 * fF;
  c.leakage_nmos = drive * 10 * nW;
  c.leakage_pmos = drive * 8 * nW;
  c.area = drive * 1.0 * um2;
  c.rise = make_table(1.0);
  c.fall = make_table(0.9);
  return c;
}

TEST(Cell, Names) {
  EXPECT_EQ(repeater_cell_name(CellKind::Inverter, 4), "INVD4");
  EXPECT_EQ(repeater_cell_name(CellKind::Buffer, 16), "BUFD16");
  EXPECT_EQ(cell_kind_name(CellKind::Inverter), "INV");
}

TEST(Cell, LeakageAverage) {
  const RepeaterCell c = make_cell(CellKind::Inverter, 4);
  EXPECT_DOUBLE_EQ(c.leakage_avg(), 0.5 * (c.leakage_nmos + c.leakage_pmos));
}

TEST(TimingTableTest, BilinearEvalAtGridPointsExact) {
  const TimingTable t = make_table(1.0);
  EXPECT_DOUBLE_EQ(t.eval_delay(10 * ps, 1 * fF), t.delay(0, 0));
  EXPECT_DOUBLE_EQ(t.eval_delay(100 * ps, 100 * fF), t.delay(1, 2));
  EXPECT_DOUBLE_EQ(t.eval_out_slew(10 * ps, 10 * fF), t.out_slew(0, 1));
}

TEST(TimingTableTest, InvalidTableRejected) {
  TimingTable t;
  EXPECT_FALSE(t.valid());
  EXPECT_THROW(t.eval_delay(0, 0), Error);
}

TEST(TimingTableTest, WorstDelayIsMaxOfEdges) {
  const RepeaterCell c = make_cell(CellKind::Inverter, 4);
  const double rise = c.rise.eval_delay(50 * ps, 20 * fF);
  const double fall = c.fall.eval_delay(50 * ps, 20 * fF);
  EXPECT_DOUBLE_EQ(c.worst_delay(50 * ps, 20 * fF), std::max(rise, fall));
}

TEST(Library, AddLookupAndDuplicates) {
  CellLibrary lib("pim_test", TechNode::N65, 1.0);
  lib.add_cell(make_cell(CellKind::Inverter, 4));
  lib.add_cell(make_cell(CellKind::Inverter, 8));
  lib.add_cell(make_cell(CellKind::Buffer, 4));
  EXPECT_TRUE(lib.has_cell("INVD4"));
  EXPECT_FALSE(lib.has_cell("INVD2"));
  EXPECT_EQ(lib.cell("INVD8").drive, 8);
  EXPECT_EQ(lib.cell(CellKind::Buffer, 4).name, "BUFD4");
  EXPECT_THROW(lib.cell("NAND2"), Error);
  EXPECT_THROW(lib.add_cell(make_cell(CellKind::Inverter, 4)), Error);
}

TEST(Library, CellsOfKindSortedByDrive) {
  CellLibrary lib("pim_test", TechNode::N65, 1.0);
  lib.add_cell(make_cell(CellKind::Inverter, 16));
  lib.add_cell(make_cell(CellKind::Inverter, 2));
  lib.add_cell(make_cell(CellKind::Buffer, 8));
  lib.add_cell(make_cell(CellKind::Inverter, 8));
  const auto inv = lib.cells_of_kind(CellKind::Inverter);
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv[0]->drive, 2);
  EXPECT_EQ(inv[1]->drive, 8);
  EXPECT_EQ(inv[2]->drive, 16);
}

TEST(Library, StandardDrivesCoverPaperRange) {
  const auto& drives = standard_drive_strengths();
  // The paper's experiments use INVD4..INVD20; the buffering search needs
  // larger sizes too.
  for (int d : {4, 6, 8, 12, 16, 20}) {
    EXPECT_NE(std::find(drives.begin(), drives.end(), d), drives.end()) << d;
  }
  EXPECT_GE(drives.back(), 32);
}

TEST(LibertyFile, RoundTripPreservesLibrary) {
  CellLibrary lib("pim_45nm", TechNode::N45, 1.1);
  lib.add_cell(make_cell(CellKind::Inverter, 4));
  lib.add_cell(make_cell(CellKind::Buffer, 12));
  const CellLibrary r = parse_liberty(write_liberty(lib));

  EXPECT_EQ(r.name(), "pim_45nm");
  EXPECT_EQ(r.node(), TechNode::N45);
  EXPECT_DOUBLE_EQ(r.vdd(), 1.1);
  ASSERT_EQ(r.cells().size(), 2u);
  const RepeaterCell& a = lib.cell("INVD4");
  const RepeaterCell& b = r.cell("INVD4");
  EXPECT_EQ(b.kind, a.kind);
  EXPECT_EQ(b.drive, a.drive);
  EXPECT_NEAR(b.wn, a.wn, 1e-15);
  EXPECT_NEAR(b.input_cap, a.input_cap, 1e-21);
  EXPECT_NEAR(b.leakage_pmos, a.leakage_pmos, 1e-15);
  ASSERT_TRUE(b.rise.valid());
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(b.rise.delay(i, j), a.rise.delay(i, j), 1e-18);
      EXPECT_NEAR(b.fall.out_slew(i, j), a.fall.out_slew(i, j), 1e-18);
    }
  const RepeaterCell& buf = r.cell("BUFD12");
  EXPECT_EQ(buf.kind, CellKind::Buffer);
}

TEST(LibertyFile, WriterRejectsUnpopulatedTables) {
  CellLibrary lib("x", TechNode::N90, 1.2);
  RepeaterCell c = make_cell(CellKind::Inverter, 4);
  c.rise = TimingTable{};
  lib.add_cell(std::move(c));
  EXPECT_THROW(write_liberty(lib), Error);
}

TEST(LibertyFile, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_liberty(""), Error);
  EXPECT_THROW(parse_liberty("library (x) {\n voltage 1;\n"), Error);  // unterminated
  EXPECT_THROW(parse_liberty("library (x) {\n bogus 1;\n}\n"), Error);
  EXPECT_THROW(parse_liberty("library (x) { voltage 1; cell (A) { kind INV; } }"),
               Error);  // missing timing
  // Ragged table rows.
  CellLibrary lib("pim_90nm", TechNode::N90, 1.2);
  lib.add_cell(make_cell(CellKind::Inverter, 4));
  std::string text = write_liberty(lib);
  const size_t pos = text.find("row");
  text.insert(text.find(';', pos), " 1e-12");
  EXPECT_THROW(parse_liberty(text), Error);
}

TEST(LibertyFile, FileRoundTrip) {
  CellLibrary lib("pim_16nm", TechNode::N16, 0.7);
  lib.add_cell(make_cell(CellKind::Inverter, 2));
  const std::string path = testing::TempDir() + "/pim_liberty_test.lib";
  save_liberty(lib, path);
  const CellLibrary r = load_liberty(path);
  EXPECT_EQ(r.node(), TechNode::N16);
  EXPECT_TRUE(r.has_cell("INVD2"));
}

}  // namespace
}  // namespace pim
