// Tests for pim::sta — Elmore utilities, the golden sign-off analyzer's
// physical soundness (SI ordering, pi convergence), the composition
// calibration, coefficient-file round trips, and the headline Table II
// property: the calibrated proposed model tracks sign-off closely while
// the baselines do not.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "spice/transient.hpp"
#include "spice/measure.hpp"
#include "util/rng.hpp"

#include "charlib/coeffs_io.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "sta/awe.hpp"
#include "sta/calibrated.hpp"
#include "sta/elmore.hpp"
#include "sta/nldm_timer.hpp"
#include "sta/noise.hpp"
#include "sta/signoff.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

TEST(Elmore, LadderMatchesClosedForm) {
  // Uniform ladder Elmore = R C (N+1)/(2N) + R C_load.
  const double r = 1000.0;
  const double c = 1.0 * pF;
  const double cl = 0.1 * pF;
  for (int n : {1, 4, 10}) {
    const double expected = r * c * (n + 1) / (2.0 * n) + r * cl;
    EXPECT_NEAR(elmore_rc_ladder(r, c, cl, n), expected, 1e-15);
  }
  EXPECT_THROW(elmore_rc_ladder(r, c, cl, 0), Error);
}

TEST(Elmore, BufferedLineGrowsWithLength) {
  const Technology& t = technology(TechNode::N65);
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 4;
  LinkContext a;
  a.length = 2 * mm;
  LinkContext b;
  b.length = 6 * mm;
  EXPECT_GT(elmore_buffered_line(t, b, d), elmore_buffered_line(t, a, d));
  EXPECT_GT(elmore_buffered_line(t, a, d), 0.0);
}

// Shared calibrated fit at 65 nm.
class StaFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = &technology(TechNode::N65);
    CharacterizationOptions copt;
    copt.drives = {2, 8, 32};
    // Trimmed calibration axes keep the fixture fast; benches use the
    // full defaults.
    CompositionOptions comp;
    comp.drives = {8, 32};
    comp.segment_lengths = {0.5e-3, 1.5e-3};
    comp.input_slews = {50e-12, 300e-12};
    comp.chain_lengths = {1, 3};
    fit_ = new TechnologyFit(calibrated_fit(TechNode::N65, "", copt, comp));
    model_ = new ProposedModel(*tech_, *fit_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fit_;
    model_ = nullptr;
    fit_ = nullptr;
  }
  static const Technology* tech_;
  static TechnologyFit* fit_;
  static ProposedModel* model_;
};

const Technology* StaFixture::tech_ = nullptr;
TechnologyFit* StaFixture::fit_ = nullptr;
ProposedModel* StaFixture::model_ = nullptr;

LinkContext short_link(DesignStyle style) {
  LinkContext ctx;
  ctx.length = 1.5 * mm;
  ctx.input_slew = 100 * ps;
  ctx.style = style;
  return ctx;
}

TEST_F(StaFixture, AggressorModesOrderDelays) {
  // Worst-case opposing switching must be slower than quiet neighbors,
  // which must be slower than same-direction switching.
  const LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 2;
  SignoffOptions opt;
  opt.aggressors = AggressorMode::Opposing;
  const double opposing = signoff_link(*tech_, ctx, d, opt).delay;
  opt.aggressors = AggressorMode::Quiet;
  const double quiet = signoff_link(*tech_, ctx, d, opt).delay;
  opt.aggressors = AggressorMode::SameDirection;
  const double same = signoff_link(*tech_, ctx, d, opt).delay;
  EXPECT_GT(opposing, quiet);
  EXPECT_GT(quiet, same);
}

TEST_F(StaFixture, PiDiscretizationConverged) {
  const LinkContext ctx = short_link(DesignStyle::Shielded);
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 2;
  SignoffOptions coarse;
  coarse.pi_per_segment = 3;
  SignoffOptions fine;
  fine.pi_per_segment = 12;
  const double d_coarse = signoff_link(*tech_, ctx, d, coarse).delay;
  const double d_fine = signoff_link(*tech_, ctx, d, fine).delay;
  EXPECT_NEAR(d_coarse, d_fine, 0.05 * d_fine);
}

TEST_F(StaFixture, DelayGrowsWithLength) {
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 2;
  LinkContext a = short_link(DesignStyle::Shielded);
  LinkContext b = a;
  b.length = 3 * mm;
  EXPECT_GT(signoff_link(*tech_, b, d).delay, signoff_link(*tech_, a, d).delay);
}

TEST_F(StaFixture, CompositionCalibrationIsSane) {
  for (const CompositionWeights* w : {&fit_->comp_coupled, &fit_->comp_shielded}) {
    EXPECT_GT(w->kappa_c, 0.1);
    EXPECT_LT(w->kappa_c, 1.5);
    EXPECT_GT(w->kappa_w, 0.1);
    EXPECT_LT(w->kappa_w, 1.6);
    // The calibration must reproduce its own training chains closely.
    EXPECT_LT(w->worst_rel_error, 0.25);
  }
}

// The Table II property (relaxed bound): proposed within 20 % of golden
// sign-off while Bakoglu errs far more on coupled wiring.
TEST_F(StaFixture, ProposedTracksSignoffBaselinesDoNot) {
  const BakogluModel bak(*tech_);
  LinkDesign d;
  d.drive = 16;
  for (const double len_mm : {1.0, 4.0}) {
    for (const DesignStyle style : {DesignStyle::SingleSpacing, DesignStyle::Shielded}) {
      LinkContext ctx = short_link(style);
      ctx.length = len_mm * mm;
      d.num_repeaters = std::max(1, static_cast<int>(len_mm));
      const double golden = signoff_link(*tech_, ctx, d).delay;
      const double prop = model_->evaluate(ctx, d).delay;
      const double bako = bak.evaluate(ctx, d).delay;
      EXPECT_NEAR(prop, golden, 0.20 * golden)
          << "len=" << len_mm << " style=" << design_style_name(style);
      if (style == DesignStyle::SingleSpacing) {
        // Coupling-blind baseline misses badly on coupled wires.
        EXPECT_GT(std::fabs(bako - golden), 0.25 * golden);
      }
    }
  }
}

TEST_F(StaFixture, GoldenSlewTrackedByModel) {
  LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  ctx.length = 4 * mm;
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 4;
  const SignoffResult g = signoff_link(*tech_, ctx, d);
  const LinkEstimate e = model_->evaluate(ctx, d);
  EXPECT_NEAR(e.output_slew, g.output_slew, 0.5 * g.output_slew);
}

// ----------------------------------------------------------------- AWE

TEST(Awe, TreeElmoreMatchesLadderFormula) {
  // Uniform ladder: tree m1 must equal the closed-form Elmore plus the
  // driver term R_drv * C_total.
  const double r = 500.0, c = 200 * fF, cl = 30 * fF, rd = 120.0;
  const int n = 8;
  RcTree tree(0.0);
  int node = 0;
  for (int k = 0; k < n; ++k)
    node = tree.add_node(node, r / n, c / n + (k + 1 == n ? cl : 0.0));
  const double expected = elmore_rc_ladder(r, c, cl, n) + rd * (c + cl);
  EXPECT_NEAR(tree.elmore(node, rd), expected, 1e-18);
}

TEST(Awe, TwoPoleMatchesTransientOnDrivenLine) {
  // Same configuration the engine was validated on (Sakurai check):
  // Rd = 105 ohm driving a distributed (220 ohm, 514 fF) line + 22 fF.
  const double d = awe_ladder_delay(105.0, 220.0, 514 * fF, 22 * fF, 20);
  // Golden transient measured ~87 ps for this line (driven by a fast
  // ramp); AWE two-pole should land within a few percent.
  EXPECT_NEAR(d, 87.0 * ps, 6.0 * ps);
}

TEST(Awe, SinglePoleExactForRc) {
  // One R, one C: m1 = RC, m2 = (RC)^2 -> b2 = 0 -> single-pole fallback
  // gives exactly RC ln 2.
  RcTree tree(0.0);
  const int node = tree.add_node(0, 1000.0, 1 * pF);
  const auto m = tree.moments(node, 0.0);
  EXPECT_NEAR(m.m1, 1 * ns, 1e-15);
  const double d = two_pole_delay(m.m1, m.m2, 0.5);
  EXPECT_NEAR(d, std::log(2.0) * ns, 0.01 * ns);
}

TEST(Awe, ThresholdMonotone) {
  const auto d20 = awe_ladder_delay(100.0, 300.0, 400 * fF, 10 * fF, 10, 0.2);
  const auto d50 = awe_ladder_delay(100.0, 300.0, 400 * fF, 10 * fF, 10, 0.5);
  const auto d80 = awe_ladder_delay(100.0, 300.0, 400 * fF, 10 * fF, 10, 0.8);
  EXPECT_LT(d20, d50);
  EXPECT_LT(d50, d80);
}

TEST(Awe, ValidationErrors) {
  RcTree tree(0.0);
  EXPECT_THROW(tree.add_node(5, 1.0, 0.0), Error);
  EXPECT_THROW(tree.add_node(0, -1.0, 0.0), Error);
  EXPECT_THROW(two_pole_delay(-1.0, 1.0, 0.5), Error);
  EXPECT_THROW(two_pole_delay(1.0, 1.0, 1.5), Error);
}

// Property: on random RC trees, the two-pole AWE delay tracks the full
// transient simulation — cross-validating the moment computation, the
// Pade match, AND the transient engine against each other.
class AweRandomTree : public ::testing::TestWithParam<int> {};

TEST_P(AweRandomTree, TwoPoleTracksTransient) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  const int extra_nodes = 4 + static_cast<int>(rng.next_below(12));
  const double r_drv = rng.uniform(50.0, 400.0);

  RcTree tree(rng.uniform(1.0, 20.0) * fF);
  Circuit ckt;
  const NodeId in = ckt.add_node();
  ckt.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  std::vector<NodeId> ckt_node = {ckt.add_node()};
  ckt.add_resistor(in, ckt_node[0], r_drv);
  ckt.add_capacitor(ckt_node[0], ckt.ground(), 0.0);  // root cap added below

  std::vector<double> root_caps = {0.0};
  // Mirror the tree into a circuit as we grow it.
  {
    // root cap
    const double c0 = rng.uniform(1.0, 20.0) * fF;
    (void)c0;
  }
  // Rebuild deterministically: regenerate with same draws.
  // (Simpler: grow both structures together.)
  std::vector<int> tree_ids = {0};
  ckt.add_capacitor(ckt_node[0], ckt.ground(), 1.0 * fF);
  tree.add_cap(0, 1.0 * fF);
  int deepest_tree = 0;
  NodeId deepest_ckt = ckt_node[0];
  // Even seeds: random chains (the two-pole match is tight there).
  // Odd seeds: random branchy trees, where Pade(0,2) has no zeros to
  // match and is known to be pessimistic — checked with a loose bound.
  const bool branchy = (GetParam() % 2) == 1;
  for (int k = 0; k < extra_nodes; ++k) {
    const size_t parent = branchy ? rng.next_below(tree_ids.size()) : tree_ids.size() - 1;
    const double r = rng.uniform(50.0, 500.0);
    const double c = rng.uniform(5.0, 80.0) * fF;
    const int t = tree.add_node(tree_ids[parent], r, c);
    const NodeId n = ckt.add_node();
    ckt.add_resistor(ckt_node[parent], n, r);
    ckt.add_capacitor(n, ckt.ground(), c);
    tree_ids.push_back(t);
    ckt_node.push_back(n);
    deepest_tree = t;
    deepest_ckt = n;
  }

  const RcTree::Moments m = tree.moments(deepest_tree, r_drv);
  const double awe = two_pole_delay(m.m1, m.m2, 0.5);

  TransientOptions sim;
  sim.dt = std::max(0.05 * ps, awe / 2000.0);
  sim.t_stop = 10.0 * awe + 20.0 * ps;
  const TransientResult res = run_transient(ckt, sim, {deepest_ckt});
  const double golden =
      crossing_time(res.time, res.trace(deepest_ckt), 0.5, EdgeKind::Rising) - 0.5 * ps;

  if (branchy) {
    // No zeros in the Pade(0,2) match: far nodes on branchy trees read
    // pessimistic. The property that matters is bounded, never-optimistic
    // behavior.
    EXPECT_GE(awe, 0.85 * golden) << "seed " << GetParam();
    EXPECT_LE(awe, 2.5 * golden) << "seed " << GetParam();
  } else {
    EXPECT_NEAR(awe, golden, 0.12 * golden + 0.5 * ps) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AweRandomTree, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------- NLDM timer

TEST_F(StaFixture, NldmTimerTracksGolden) {
  // Characterize the exact cell the timer will look up.
  CharacterizationOptions copt;
  copt.drives = {8};
  copt.buffers = false;
  const CellLibrary lib = characterize_library(*tech_, copt);

  LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  ctx.length = 2 * mm;
  LinkDesign d;
  d.drive = 8;
  d.num_repeaters = 2;
  const NldmTimerResult timed = nldm_link_delay(lib, *tech_, ctx, d);
  const double golden = signoff_link(*tech_, ctx, d).delay;
  EXPECT_NEAR(timed.delay, golden, 0.35 * golden);
  EXPECT_GT(timed.output_slew, 0.0);

  // The scaled-Elmore flavor lands close to the two-pole match on
  // repeatered (short-segment) wires.
  NldmTimerOptions elm;
  elm.wire = WireDelayMethod::Elmore;
  EXPECT_NEAR(nldm_link_delay(lib, *tech_, ctx, d, elm).delay, timed.delay,
              0.15 * timed.delay);

  // Missing drive strength: tables cannot extrapolate.
  LinkDesign missing = d;
  missing.drive = 64;
  EXPECT_THROW(nldm_link_delay(lib, *tech_, ctx, missing), Error);
}

// ---------------------------------------------------------------- noise

TEST_F(StaFixture, NoiseGrowsWithSegmentLength) {
  LinkDesign d;
  d.drive = 12;
  d.num_repeaters = 1;
  double prev_golden = 0.0;
  double prev_model = 0.0;
  for (double seg_mm : {0.4, 1.0, 2.0}) {
    LinkContext ctx = short_link(DesignStyle::SingleSpacing);
    ctx.length = seg_mm * mm;
    const double g = golden_noise_peak(*tech_, ctx, d);
    const double m = noise_peak_model(*tech_, *fit_, ctx, d);
    EXPECT_GT(g, prev_golden);
    EXPECT_GT(m, prev_model);
    prev_golden = g;
    prev_model = m;
  }
  // Glitches on minimum-pitch wiring are a sizable fraction of vdd.
  EXPECT_GT(prev_golden, 0.1 * tech_->vdd);
  EXPECT_LT(prev_golden, 0.5 * tech_->vdd);
}

TEST_F(StaFixture, ShieldingKillsNoise) {
  LinkContext ctx = short_link(DesignStyle::Shielded);
  ctx.length = 1.0 * mm;
  LinkDesign d;
  d.drive = 12;
  d.num_repeaters = 1;
  EXPECT_DOUBLE_EQ(noise_peak_model(*tech_, *fit_, ctx, d), 0.0);
  // Golden: no neighbors exist at all in the shielded bundle.
  EXPECT_LT(golden_noise_peak(*tech_, ctx, d), 0.02 * tech_->vdd);
}

TEST_F(StaFixture, NoiseCalibrationTracksGolden) {
  const NoiseCalibration cal = calibrate_noise(*tech_, *fit_);
  EXPECT_GT(cal.kappa_n, 0.3);
  EXPECT_LT(cal.kappa_n, 1.5);
  EXPECT_LT(cal.worst_rel_error, 0.4);
  // Off-training point.
  LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  ctx.length = 1.3 * mm;
  LinkDesign d;
  d.drive = 12;
  d.num_repeaters = 1;
  const double g = golden_noise_peak(*tech_, ctx, d);
  const double m = noise_peak_model(*tech_, *fit_, ctx, d, cal.kappa_n);
  EXPECT_NEAR(m, g, 0.3 * g);
}

TEST_F(StaFixture, NoisePerSegmentOnly) {
  LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  LinkDesign d;
  d.num_repeaters = 3;
  EXPECT_THROW(golden_noise_peak(*tech_, ctx, d), Error);
}

TEST_F(StaFixture, StrongerHolderReducesNoise) {
  LinkContext ctx = short_link(DesignStyle::SingleSpacing);
  ctx.length = 1.0 * mm;
  LinkDesign weak;
  weak.drive = 4;
  weak.num_repeaters = 1;
  LinkDesign strong = weak;
  strong.drive = 32;
  EXPECT_LT(golden_noise_peak(*tech_, ctx, strong), golden_noise_peak(*tech_, ctx, weak));
  EXPECT_LT(noise_peak_model(*tech_, *fit_, ctx, strong),
            noise_peak_model(*tech_, *fit_, ctx, weak));
}

// ---------------------------------------------------- coefficient files

TEST_F(StaFixture, CoeffsRoundTripExactly) {
  const TechnologyFit r = parse_fit(write_fit(*fit_));
  EXPECT_EQ(r.node, fit_->node);
  EXPECT_DOUBLE_EQ(r.vdd, fit_->vdd);
  EXPECT_DOUBLE_EQ(r.gamma, fit_->gamma);
  EXPECT_DOUBLE_EQ(r.comp_coupled.kappa_c, fit_->comp_coupled.kappa_c);
  EXPECT_DOUBLE_EQ(r.comp_shielded.kappa_w, fit_->comp_shielded.kappa_w);
  EXPECT_DOUBLE_EQ(r.comp_shielded.worst_rel_error, fit_->comp_shielded.worst_rel_error);
  EXPECT_DOUBLE_EQ(r.inv_rise.rho0, fit_->inv_rise.rho0);
  EXPECT_DOUBLE_EQ(r.inv_fall.b2, fit_->inv_fall.b2);
  EXPECT_DOUBLE_EQ(r.buf_rise.a2, fit_->buf_rise.a2);
  EXPECT_DOUBLE_EQ(r.leakage.p1, fit_->leakage.p1);
  EXPECT_DOUBLE_EQ(r.area1, fit_->area1);
}

TEST_F(StaFixture, CoeffsRejectMalformedInput) {
  EXPECT_THROW(parse_fit(""), Error);
  EXPECT_THROW(parse_fit("coefficients \"65nm\" {\n vdd 1\n"), Error);
  std::string text = write_fit(*fit_);
  const size_t pos = text.find("gamma");
  text.erase(pos, text.find('\n', pos) - pos + 1);
  EXPECT_THROW(parse_fit(text), Error);
}

TEST_F(StaFixture, CalibratedFitCacheHitsAndValidates) {
  const std::string path = testing::TempDir() + "/pim_fit_cache.coeffs";
  save_fit(*fit_, path);
  // Cache hit: returns without re-characterizing (instant).
  const TechnologyFit cached = calibrated_fit(TechNode::N65, path);
  EXPECT_DOUBLE_EQ(cached.gamma, fit_->gamma);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pim
