// The daemon core (src/serve): socket round trips against a real
// in-process Server, protocol error handling, admission control, stats,
// and graceful drain. pimd itself is this Server plus flag parsing; the
// end-to-end binary is exercised by scripts/check_serve.sh.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "api/wire.hpp"
#include "obs/report.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace pim::serve {
namespace {

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port << ": " << std::strerror(errno);
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to " << path << ": " << std::strerror(errno);
  return fd;
}

void send_line(int fd, std::string line) {
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
}

// A buffered line reader over one fd; "" means EOF before a newline.
struct LineReader {
  int fd;
  std::string buffer;

  std::string next() {
    size_t pos;
    char chunk[65536];
    while ((pos = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer.substr(0, pos);
    buffer.erase(0, pos + 1);
    return line;
  }
};

// Spin until the server's own stats report satisfies `done` (stats_json
// is safe from any thread). The predicates below wait on accepted /
// queue_depth transitions, so the assertions that follow are not timing
// guesses.
template <typename Pred>
void wait_for_stats(Server& server, Pred done) {
  for (int i = 0; i < 50000; ++i) {
    const obs::JsonValue v = obs::parse_json(server.stats_json());
    if (done(v)) return;
    ::usleep(100);
  }
  FAIL() << "stats never reached the expected state: " << server.stats_json();
}

double stat(const obs::JsonValue& v, const char* name) {
  const obs::JsonValue* m = v.find(name);
  return m == nullptr ? -1.0 : m->number;
}

std::string big_techfile_batch(int items) {
  std::string line = "{\"op\":\"batch\",\"id\":100,\"items\":[";
  for (int i = 0; i < items; ++i) {
    if (i > 0) line += ',';
    line += "{\"op\":\"techfile\",\"tech\":\"65nm\"}";
  }
  line += "]}";
  return line;
}

TEST(Serve, UnixSocketRoundTripMatchesInProcessExecution) {
  const std::string path = "/tmp/pim_test_serve_" + std::to_string(::getpid()) + ".sock";
  ServerOptions options;
  options.socket_path = path;
  options.workers = 2;
  Server server(options);
  server.start();

  const std::string line = "{\"op\":\"techfile\",\"id\":5,\"tech\":\"65nm\"}";
  const int fd = connect_unix(path);
  LineReader reader{fd, {}};
  send_line(fd, line);
  const std::string from_daemon = reader.next();
  EXPECT_EQ(from_daemon, api::wire::execute_line(line))
      << "daemon response must be byte-identical to a direct in-process call";
  EXPECT_NE(from_daemon.find("\"id\":5"), std::string::npos);
  EXPECT_NE(from_daemon.find("\"ok\":true"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(Serve, TcpEphemeralPortServesAndReportsItself) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.workers = 1;
  Server server(options);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  send_line(fd, "{\"op\":\"techfile\",\"id\":1,\"tech\":\"45nm\"}");
  const std::string response = reader.next();
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(Serve, MalformedLineGetsTypedErrorWithoutKillingTheConnection) {
  ServerOptions options;
  options.tcp_port = 0;
  Server server(options);
  server.start();

  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  send_line(fd, "this is } not json");
  const std::string error_response = reader.next();
  {
    const obs::JsonValue v = obs::parse_json(error_response);
    EXPECT_FALSE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("error")->find("code")->text, "bad_input");
    EXPECT_EQ(v.find("error")->find("exit_code")->number, 2.0);
  }
  // The same connection keeps serving afterwards.
  send_line(fd, "{\"op\":\"techfile\",\"id\":2,\"tech\":\"65nm\"}");
  const std::string ok_response = reader.next();
  EXPECT_NE(ok_response.find("\"id\":2"), std::string::npos);
  EXPECT_NE(ok_response.find("\"ok\":true"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(Serve, UnknownTechStaysTypedAndTheConnectionSurvives) {
  ServerOptions options;
  options.tcp_port = 0;
  Server server(options);
  server.start();
  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  send_line(fd, "{\"op\":\"techfile\",\"id\":3,\"tech\":\"no-such-tech\"}");
  const std::string response = reader.next();
  const obs::JsonValue v = obs::parse_json(response);
  EXPECT_EQ(v.find("id")->number, 3.0);
  EXPECT_FALSE(v.find("ok")->boolean);
  ::close(fd);
  server.stop();
}

TEST(Serve, FullQueueRejectsWithOverloaded) {
  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  options.queue_limit = 1;
  Server server(options);
  server.start();

  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  // Occupy the single worker with a deterministic multi-second batch,
  // wait until it is picked up (queue drains), then fill the queue and
  // overflow it. The waits make the rejection deterministic, not timed.
  send_line(fd, big_techfile_batch(5000));
  wait_for_stats(server, [](const obs::JsonValue& v) {
    return stat(v, "accepted") == 1.0 && stat(v, "queue_depth") == 0.0;
  });
  send_line(fd, "{\"op\":\"techfile\",\"id\":201,\"tech\":\"65nm\"}");
  wait_for_stats(server, [](const obs::JsonValue& v) {
    return stat(v, "accepted") == 2.0;
  });
  send_line(fd, "{\"op\":\"techfile\",\"id\":202,\"tech\":\"65nm\"}");

  // Responses stay in request order: batch, queued single, rejection.
  const std::string batch_response = reader.next();
  EXPECT_NE(batch_response.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(batch_response.find("\"failed\":0"), std::string::npos);
  const std::string queued_response = reader.next();
  EXPECT_NE(queued_response.find("\"id\":201"), std::string::npos);
  EXPECT_NE(queued_response.find("\"ok\":true"), std::string::npos);
  const std::string rejection = reader.next();
  const obs::JsonValue v = obs::parse_json(rejection);
  EXPECT_EQ(v.find("id")->number, 202.0);
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->text, "overloaded");

  const obs::JsonValue stats = obs::parse_json(server.stats_json());
  EXPECT_EQ(stat(stats, "rejected"), 1.0);
  ::close(fd);
  server.stop();
}

TEST(Serve, StatsAnswersInlineEvenWhileTheWorkerIsBusy) {
  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  Server server(options);
  server.start();

  const int busy_fd = connect_tcp(server.tcp_port());
  LineReader busy_reader{busy_fd, {}};
  send_line(busy_fd, big_techfile_batch(5000));
  wait_for_stats(server, [](const obs::JsonValue& v) {
    return stat(v, "accepted") == 1.0;
  });

  // A second connection gets stats immediately — the reader answers it
  // without going through the (occupied) worker queue.
  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  send_line(fd, "{\"op\":\"stats\",\"id\":9}");
  const std::string response = reader.next();
  const obs::JsonValue v = obs::parse_json(response);
  EXPECT_EQ(v.find("id")->number, 9.0);
  EXPECT_TRUE(v.find("ok")->boolean);
  const obs::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("schema")->text, "pim.serve.v1");
  EXPECT_GE(stat(*result, "accepted"), 1.0);
  ::close(fd);

  EXPECT_NE(busy_reader.next().find("\"ok\":true"), std::string::npos);
  ::close(busy_fd);
  server.stop();
}

TEST(Serve, DrainFlushesInFlightResponsesBeforeClosing) {
  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  Server server(options);
  server.start();

  const int fd = connect_tcp(server.tcp_port());
  LineReader reader{fd, {}};
  send_line(fd, big_techfile_batch(5000));
  // Only stop once the request is provably accepted; drain must then
  // finish it and flush the response before the connection drops. Stop
  // runs on another thread while this one keeps reading — the multi-MB
  // batch response cannot fit in the socket buffers, so a client that
  // stopped reading would wedge the flush (and any real client of a
  // draining daemon is mid-read anyway).
  wait_for_stats(server, [](const obs::JsonValue& v) {
    return stat(v, "accepted") == 1.0;
  });
  std::thread stopper([&server] { server.stop(); });

  const std::string response = reader.next();
  EXPECT_NE(response.find("\"id\":100"), std::string::npos);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(reader.next(), "");  // then EOF: the daemon closed cleanly
  stopper.join();
  ::close(fd);

  const obs::JsonValue stats = obs::parse_json(server.stats_json());
  EXPECT_EQ(stat(stats, "completed"), 1.0);
}

TEST(Serve, ListenersCloseAfterStop) {
  ServerOptions options;
  options.tcp_port = 0;
  Server server(options);
  server.start();
  const int port = server.tcp_port();
  const int fd = connect_tcp(port);
  server.stop();
  // The pre-drain connection's read side is shut; anything buffered gets
  // answered, new connects fail. Either the send fails or the socket is
  // closed — the key invariant is the server came down cleanly.
  const int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_NE(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "listener should be closed after stop()";
  ::close(fd2);
  ::close(fd);
}

TEST(Serve, StartValidatesItsOptions) {
  {
    Server server(ServerOptions{});  // no listener at all
    EXPECT_THROW(server.start(), Error);
  }
  {
    ServerOptions options;
    options.tcp_port = 0;
    options.workers = 0;
    Server server(options);
    EXPECT_THROW(server.start(), Error);
  }
}

}  // namespace
}  // namespace pim::serve
