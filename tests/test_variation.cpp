// Tests for pim::variation — the process-variation extension: sampling,
// perturbed evaluation, and Monte-Carlo statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterize.hpp"
#include "sta/calibrated.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim {
namespace {

using namespace pim::unit;

TEST(RngNormal, MeanAndSigma) {
  Rng rng(11);
  const int n = 40000;
  double acc = 0.0;
  double acc2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    acc += x;
    acc2 += x * x;
  }
  EXPECT_NEAR(acc / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(acc2 / n), 1.0, 0.02);
  Rng rng2(12);
  double shifted = 0.0;
  for (int i = 0; i < n; ++i) shifted += rng2.normal(5.0, 0.5);
  EXPECT_NEAR(shifted / n, 5.0, 0.02);
}

TEST(VariationSampling, DeterministicAndClamped) {
  VariationSigmas huge;
  huge.drive_strength = 3.0;  // forces the clamp often
  Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    const VariationSample sa = sample_variation(a, huge);
    const VariationSample sb = sample_variation(b, huge);
    EXPECT_DOUBLE_EQ(sa.drive_strength, sb.drive_strength);
    EXPECT_GE(sa.drive_strength, 0.5);
    EXPECT_LE(sa.drive_strength, 2.0);
    EXPECT_GE(sa.leakage, 0.5);
    EXPECT_LE(sa.leakage, 2.0);
  }
}

class VariationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CharacterizationOptions copt;
    copt.drives = {2, 8, 32};
    copt.buffers = false;
    CompositionOptions comp;
    comp.drives = {8, 32};
    comp.segment_lengths = {0.5e-3, 1.5e-3};
    comp.input_slews = {50e-12, 300e-12};
    comp.chain_lengths = {1, 3};
    fit_ = new TechnologyFit(calibrated_fit(TechNode::N65, "", copt, comp));
    model_ = new ProposedModel(technology(TechNode::N65), *fit_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fit_;
    model_ = nullptr;
    fit_ = nullptr;
  }

  static LinkContext ctx() {
    LinkContext c;
    c.length = 5 * mm;
    c.input_slew = 100 * ps;
    return c;
  }
  static LinkDesign design() {
    LinkDesign d;
    d.drive = 16;
    d.num_repeaters = 5;
    return d;
  }

  static TechnologyFit* fit_;
  static ProposedModel* model_;
};

TechnologyFit* VariationFixture::fit_ = nullptr;
ProposedModel* VariationFixture::model_ = nullptr;

TEST_F(VariationFixture, NominalSampleReproducesModel) {
  const LinkEstimate nominal = model_->evaluate(ctx(), design());
  const LinkEstimate same = evaluate_with_variation(*model_, ctx(), design(), {});
  EXPECT_DOUBLE_EQ(same.delay, nominal.delay);
  EXPECT_DOUBLE_EQ(same.leakage_power, nominal.leakage_power);
}

TEST_F(VariationFixture, PerturbationsMoveTheRightWay) {
  const double nominal = model_->evaluate(ctx(), design()).delay;
  VariationSample strong;
  strong.drive_strength = 1.2;
  EXPECT_LT(evaluate_with_variation(*model_, ctx(), design(), strong).delay, nominal);
  VariationSample resistive;
  resistive.wire_res = 1.3;
  EXPECT_GT(evaluate_with_variation(*model_, ctx(), design(), resistive).delay, nominal);
  VariationSample leaky;
  leaky.leakage = 1.5;
  EXPECT_NEAR(evaluate_with_variation(*model_, ctx(), design(), leaky).leakage_power,
              1.5 * model_->evaluate(ctx(), design()).leakage_power, 1e-9);
  VariationSample fat_wire;
  fat_wire.wire_cap = 1.2;
  const LinkEstimate e = evaluate_with_variation(*model_, ctx(), design(), fat_wire);
  EXPECT_GT(e.delay, nominal);
  EXPECT_GT(e.switched_cap, model_->evaluate(ctx(), design()).switched_cap);
}

TEST_F(VariationFixture, MonteCarloStatisticsAreSane) {
  const MonteCarloResult mc = monte_carlo_link(*model_, ctx(), design(), 500, 42);
  ASSERT_EQ(mc.delays.size(), 500u);
  EXPECT_TRUE(std::is_sorted(mc.delays.begin(), mc.delays.end()));
  // The distribution brackets the nominal and centers near it.
  EXPECT_LT(mc.delays.front(), mc.nominal_delay);
  EXPECT_GT(mc.delays.back(), mc.nominal_delay);
  EXPECT_NEAR(mc.mean_delay, mc.nominal_delay, 0.1 * mc.nominal_delay);
  EXPECT_GT(mc.sigma_delay, 0.0);
  EXPECT_LT(mc.sigma_delay, 0.3 * mc.mean_delay);
  EXPECT_GT(mc.mean_power, 0.0);
}

TEST_F(VariationFixture, YieldCurveMonotonicAndCalibrated) {
  const MonteCarloResult mc = monte_carlo_link(*model_, ctx(), design(), 400, 9);
  double prev = -1.0;
  for (double budget = 0.8 * mc.mean_delay; budget < 1.4 * mc.mean_delay;
       budget += 0.05 * mc.mean_delay) {
    const double y = mc.yield_at(budget);
    EXPECT_GE(y, prev);
    prev = y;
  }
  EXPECT_DOUBLE_EQ(mc.yield_at(mc.delays.back() + 1e-15), 1.0);
  EXPECT_DOUBLE_EQ(mc.yield_at(mc.delays.front() - 1e-15), 0.0);
  // Quantile consistency: yield at the q-quantile is ~q.
  const double q90 = mc.delay_quantile(0.9);
  EXPECT_NEAR(mc.yield_at(q90), 0.9, 0.05);
}

TEST_F(VariationFixture, NoSamplesFailWithoutInjectedFaults) {
  const MonteCarloResult mc = monte_carlo_link(*model_, ctx(), design(), 200, 17);
  EXPECT_EQ(mc.failed_samples, 0);
  const MonteCarloResult wid =
      monte_carlo_link_within_die(*model_, ctx(), design(), 200, 17);
  EXPECT_EQ(wid.failed_samples, 0);
}

TEST_F(VariationFixture, MonteCarloDeterministicPerSeed) {
  const MonteCarloResult a = monte_carlo_link(*model_, ctx(), design(), 100, 5);
  const MonteCarloResult b = monte_carlo_link(*model_, ctx(), design(), 100, 5);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  const MonteCarloResult c = monte_carlo_link(*model_, ctx(), design(), 100, 6);
  EXPECT_NE(a.mean_delay, c.mean_delay);
}

TEST_F(VariationFixture, GuardbandGrowsWithSigma) {
  VariationSigmas tight;
  tight.drive_strength = 0.02;
  tight.wire_res = 0.01;
  tight.wire_cap = 0.01;
  VariationSigmas loose;
  loose.drive_strength = 0.10;
  loose.wire_res = 0.06;
  loose.wire_cap = 0.06;
  const MonteCarloResult a = monte_carlo_link(*model_, ctx(), design(), 400, 3, tight);
  const MonteCarloResult b = monte_carlo_link(*model_, ctx(), design(), 400, 3, loose);
  EXPECT_LT(a.sigma_delay, b.sigma_delay);
  EXPECT_LT(a.delay_quantile(0.99) - a.mean_delay, b.delay_quantile(0.99) - b.mean_delay);
}

TEST_F(VariationFixture, WithinDieZeroSigmaEqualsNominal) {
  VariationSigmas none;
  none.drive_strength = 0.0;
  none.device_cap = 0.0;
  none.leakage = 0.0;
  none.wire_res = 0.0;
  none.wire_cap = 0.0;
  Rng rng(1);
  const double d = link_delay_within_die(*model_, ctx(), design(), rng, none);
  EXPECT_NEAR(d, model_->evaluate(ctx(), design()).delay, 1e-9 * d);
}

TEST_F(VariationFixture, WithinDieAveragesAcrossStages) {
  // Pure device-strength variation: die-to-die scales every stage
  // together, within-die draws independent corners, so the WID sigma of
  // an N-stage link is ~1/sqrt(N) of the D2D sigma.
  VariationSigmas only_drive;
  only_drive.drive_strength = 0.06;
  only_drive.device_cap = 0.0;
  only_drive.leakage = 0.0;
  only_drive.wire_res = 0.0;
  only_drive.wire_cap = 0.0;

  LinkDesign d16 = design();
  d16.num_repeaters = 16;
  LinkContext c16 = ctx();
  c16.length = 8 * mm;

  const MonteCarloResult d2d =
      monte_carlo_link(*model_, c16, d16, 1200, 11, only_drive);
  const MonteCarloResult wid =
      monte_carlo_link_within_die(*model_, c16, d16, 1200, 11, only_drive);

  EXPECT_LT(wid.sigma_delay, d2d.sigma_delay);
  const double ratio = d2d.sigma_delay / wid.sigma_delay;
  EXPECT_NEAR(ratio, 4.0, 1.2);  // sqrt(16), loose Monte-Carlo bound
  // Means agree (both center on the nominal chain).
  EXPECT_NEAR(wid.mean_delay, d2d.mean_delay, 0.05 * d2d.mean_delay);
}

TEST_F(VariationFixture, WithinDieSigmaShrinksWithStageCount) {
  VariationSigmas only_drive;
  only_drive.drive_strength = 0.06;
  only_drive.device_cap = 0.0;
  only_drive.leakage = 0.0;
  only_drive.wire_res = 0.0;
  only_drive.wire_cap = 0.0;
  double prev_rel = 1e9;
  for (int n : {2, 6, 16}) {
    LinkDesign d = design();
    d.num_repeaters = n;
    LinkContext c = ctx();
    c.length = 0.5 * mm * n;
    const MonteCarloResult mc =
        monte_carlo_link_within_die(*model_, c, d, 800, 21, only_drive);
    const double rel = mc.sigma_delay / mc.mean_delay;
    EXPECT_LT(rel, prev_rel);
    prev_rel = rel;
  }
}

TEST_F(VariationFixture, WithinDieDeterministicPerSeed) {
  const MonteCarloResult a =
      monte_carlo_link_within_die(*model_, ctx(), design(), 100, 5);
  const MonteCarloResult b =
      monte_carlo_link_within_die(*model_, ctx(), design(), 100, 5);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_DOUBLE_EQ(a.sigma_delay, b.sigma_delay);
}

TEST(VariationValidation, RejectsBadArguments) {
  EXPECT_THROW(MonteCarloResult{}.delay_quantile(0.5), Error);
}

}  // namespace
}  // namespace pim
