// Tests for pim::models — link vocabulary, area models, the proposed
// model's behavior, and the baseline models' characteristic blind spots.
#include <gtest/gtest.h>

#include "charlib/characterize.hpp"
#include "models/area.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

// Shared calibrated fit at 65 nm (characterization is the slow part).
class ModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = &technology(TechNode::N65);
    CharacterizationOptions copt;
    copt.drives = {2, 8, 32};
    copt.buffers = true;
    // Trimmed calibration axes keep the fixture fast; benches use the
    // full defaults.
    CompositionOptions comp;
    comp.drives = {8, 32};
    comp.segment_lengths = {0.5e-3, 1.5e-3};
    comp.input_slews = {50e-12, 300e-12};
    comp.chain_lengths = {1, 3};
    fit_ = new TechnologyFit(calibrated_fit(TechNode::N65, "", copt, comp));
    model_ = new ProposedModel(*tech_, *fit_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fit_;
    model_ = nullptr;
    fit_ = nullptr;
  }

  static LinkContext context(double length_mm) {
    LinkContext ctx;
    ctx.length = length_mm * mm;
    ctx.input_slew = 100 * ps;
    ctx.frequency = 2.25 * GHz;
    return ctx;
  }

  static const Technology* tech_;
  static TechnologyFit* fit_;
  static ProposedModel* model_;
};

const Technology* ModelFixture::tech_ = nullptr;
TechnologyFit* ModelFixture::fit_ = nullptr;
ProposedModel* ModelFixture::model_ = nullptr;

TEST(LinkGeometryTest, ValidatesAndDerives) {
  const Technology& t = technology(TechNode::N90);
  LinkContext ctx;
  ctx.length = 2.0 * mm;
  LinkDesign d;
  d.num_repeaters = 4;
  const LinkGeometry g(t, ctx, d);
  EXPECT_DOUBLE_EQ(g.segment_length, 0.5 * mm);
  EXPECT_NEAR(g.seg_res, g.rc.res_per_m * 0.5 * mm, 1e-9);
  EXPECT_NEAR(g.seg_cap_couple_total, 2.0 * g.rc.cap_couple_per_m * 0.5 * mm, 1e-25);

  LinkContext bad = ctx;
  bad.length = 0.0;
  EXPECT_THROW(LinkGeometry(t, bad, d), Error);
  LinkDesign bad_d = d;
  bad_d.num_repeaters = 0;
  EXPECT_THROW(LinkGeometry(t, ctx, bad_d), Error);
}

// ------------------------------------------------------------------ area

TEST(AreaModels, PredictiveTracksGoldenStaircase) {
  const Technology& t = technology(TechNode::N45);
  for (int drive : {2, 8, 16, 48}) {
    const RepeaterSizing sz = repeater_sizing(t, CellKind::Inverter, drive);
    const double golden = golden_cell_area(t, sz.wn_out, sz.wp_out);
    const double predicted = predictive_repeater_area(t, sz.wn_out, sz.wp_out);
    // Continuous model sits within the quantization step of the staircase.
    EXPECT_LT(predicted, golden * 1.05) << drive;
    EXPECT_GT(predicted, golden * 0.5) << drive;
  }
}

TEST(AreaModels, BusAreaScalesWithBitsAndLength) {
  const Technology& t = technology(TechNode::N65);
  const double a1 = bus_wire_area(t, WireLayer::Global, DesignStyle::SingleSpacing, 64, 1 * mm);
  const double a2 = bus_wire_area(t, WireLayer::Global, DesignStyle::SingleSpacing, 128, 1 * mm);
  const double a3 = bus_wire_area(t, WireLayer::Global, DesignStyle::SingleSpacing, 64, 2 * mm);
  EXPECT_GT(a2, 1.8 * a1);
  EXPECT_LT(a2, 2.2 * a1);
  EXPECT_NEAR(a3, 2.0 * a1, 0.01 * a1);
  // Shielding pays extra tracks.
  EXPECT_GT(bus_wire_area(t, WireLayer::Global, DesignStyle::Shielded, 64, 1 * mm), 1.5 * a1);
  EXPECT_THROW(bus_wire_area(t, WireLayer::Global, DesignStyle::SingleSpacing, 0, 1 * mm), Error);
}

// -------------------------------------------------------------- proposed

TEST_F(ModelFixture, DelayGrowsWithLength) {
  LinkDesign d;
  d.drive = 16;
  double prev = 0.0;
  for (double len : {1.0, 2.0, 5.0, 10.0}) {
    LinkContext ctx = context(len);
    d.num_repeaters = static_cast<int>(len);
    const double delay = model_->evaluate(ctx, d).delay;
    EXPECT_GT(delay, prev);
    prev = delay;
  }
}

TEST_F(ModelFixture, RepeaterCountHasInteriorOptimum) {
  // For a long wire the delay-vs-N curve dips and rises again.
  const LinkContext ctx = context(10.0);
  LinkDesign d;
  d.drive = 32;
  std::vector<double> delays;
  for (int n = 1; n <= 40; ++n) {
    d.num_repeaters = n;
    delays.push_back(model_->evaluate(ctx, d).delay);
  }
  const auto best = std::min_element(delays.begin(), delays.end());
  const size_t best_n = static_cast<size_t>(best - delays.begin()) + 1;
  EXPECT_GT(best_n, 1u);
  EXPECT_LT(best_n, 40u);
  EXPECT_LT(*best, delays.front());
  EXPECT_LT(*best, delays.back());
}

TEST_F(ModelFixture, StaggeringRemovesCouplingFromDelayOnly) {
  const LinkContext ctx = context(5.0);
  LinkDesign worst;
  worst.drive = 16;
  worst.num_repeaters = 5;
  LinkDesign staggered = worst;
  staggered.miller_factor = 0.0;
  const LinkEstimate e_worst = model_->evaluate(ctx, worst);
  const LinkEstimate e_stag = model_->evaluate(ctx, staggered);
  EXPECT_LT(e_stag.delay, e_worst.delay);
  // Energy counts the physical capacitance either way.
  EXPECT_DOUBLE_EQ(e_stag.switched_cap, e_worst.switched_cap);
}

TEST_F(ModelFixture, DynamicPowerProportionalToActivityAndFrequency) {
  LinkContext ctx = context(3.0);
  LinkDesign d;
  d.num_repeaters = 3;
  ctx.activity = 0.1;
  const double p1 = model_->evaluate(ctx, d).dynamic_power;
  ctx.activity = 0.2;
  const double p2 = model_->evaluate(ctx, d).dynamic_power;
  EXPECT_NEAR(p2, 2.0 * p1, 1e-9 * p1);
  ctx.frequency *= 3.0;
  EXPECT_NEAR(model_->evaluate(ctx, d).dynamic_power, 6.0 * p1, 1e-9 * p1);
}

TEST_F(ModelFixture, LeakageScalesWithRepeaterCountAndSize) {
  const LinkContext ctx = context(5.0);
  LinkDesign d;
  d.drive = 8;
  d.num_repeaters = 4;
  const double leak4 = model_->evaluate(ctx, d).leakage_power;
  d.num_repeaters = 8;
  const double leak8 = model_->evaluate(ctx, d).leakage_power;
  EXPECT_NEAR(leak8, 2.0 * leak4, 0.01 * leak8);
  d.drive = 16;
  EXPECT_GT(model_->evaluate(ctx, d).leakage_power, leak8 * 1.5);
}

TEST_F(ModelFixture, BuffersSlowerButFewerInversions) {
  const LinkContext ctx = context(4.0);
  LinkDesign inv;
  inv.kind = CellKind::Inverter;
  inv.drive = 16;
  inv.num_repeaters = 4;
  LinkDesign buf = inv;
  buf.kind = CellKind::Buffer;
  // The buffer pays its first-stage intrinsic delay.
  EXPECT_GT(model_->evaluate(ctx, buf).delay, model_->evaluate(ctx, inv).delay);
}

TEST_F(ModelFixture, MismatchedFitRejected) {
  EXPECT_THROW(ProposedModel(technology(TechNode::N90), *fit_), Error);
}

TEST_F(ModelFixture, ShieldedFasterThanWorstCaseCoupling) {
  LinkContext ss = context(5.0);
  ss.style = DesignStyle::SingleSpacing;
  LinkContext sh = context(5.0);
  sh.style = DesignStyle::Shielded;
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 5;
  EXPECT_LT(model_->evaluate(sh, d).delay, model_->evaluate(ss, d).delay);
}

// -------------------------------------------------------------- baselines

TEST(Baselines, FirstPrinciplesResistanceInverseInWidth) {
  const Technology& t = technology(TechNode::N65);
  const double r1 = first_principles_resistance(t.nmos, t.vdd, 1.0 * um);
  const double r2 = first_principles_resistance(t.nmos, t.vdd, 2.0 * um);
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
  EXPECT_GT(r1, 100.0);   // ohm-scale sanity
  EXPECT_LT(r1, 100.0 * kohm);
}

TEST(Baselines, BakogluBlindToCoupling) {
  const Technology& t = technology(TechNode::N65);
  const BakogluModel bak(t);
  LinkContext ctx;
  ctx.length = 5 * mm;
  LinkDesign worst;
  worst.num_repeaters = 5;
  LinkDesign staggered = worst;
  staggered.miller_factor = 0.0;
  // The Miller factor does not exist in Bakoglu's world.
  EXPECT_DOUBLE_EQ(bak.evaluate(ctx, worst).delay, bak.evaluate(ctx, staggered).delay);
  // Neither does coupling in the power estimate: the Pamunuwa model
  // switches strictly more capacitance on the same design.
  const PamunuwaModel pam(t);
  EXPECT_GT(pam.evaluate(ctx, worst).switched_cap, bak.evaluate(ctx, worst).switched_cap);
}

TEST(Baselines, PamunuwaRespondsToMillerFactor) {
  const Technology& t = technology(TechNode::N65);
  const PamunuwaModel pam(t);
  LinkContext ctx;
  ctx.length = 5 * mm;
  LinkDesign worst;
  worst.num_repeaters = 5;
  LinkDesign staggered = worst;
  staggered.miller_factor = 0.0;
  EXPECT_LT(pam.evaluate(ctx, staggered).delay, pam.evaluate(ctx, worst).delay);
}

TEST(Baselines, BaselinesIgnoreResistivityCorrections) {
  // Toggling scattering/barrier must not change a baseline estimate
  // (they predate those effects), while the proposed model responds.
  const Technology& t = technology(TechNode::N65);
  const BakogluModel bak(t);
  LinkContext plain;
  plain.length = 5 * mm;
  LinkContext ablated = plain;
  ablated.wire_options.scattering = false;
  ablated.wire_options.barrier = false;
  LinkDesign d;
  d.num_repeaters = 5;
  EXPECT_DOUBLE_EQ(bak.evaluate(plain, d).delay, bak.evaluate(ablated, d).delay);
}

TEST_F(ModelFixture, ProposedRespondsToResistivityCorrections) {
  LinkContext plain = context(5.0);
  LinkContext ablated = plain;
  ablated.wire_options.scattering = false;
  ablated.wire_options.barrier = false;
  LinkDesign d;
  d.num_repeaters = 5;
  EXPECT_GT(model_->evaluate(plain, d).delay, model_->evaluate(ablated, d).delay);
}

TEST_F(ModelFixture, SimplisticBaselineAreaFarBelowLayoutArea) {
  // The paper's Table III: the original model's area assumption is
  // "simplistic" — active area only, far below the layout-accurate
  // regression area of the proposed model.
  const BakogluModel bak(*tech_);
  const LinkContext ctx = context(5.0);
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 5;
  EXPECT_LT(bak.evaluate(ctx, d).repeater_area, 0.5 * model_->evaluate(ctx, d).repeater_area);
}

}  // namespace
}  // namespace pim
