file(REMOVE_RECURSE
  "CMakeFiles/pim_numeric.dir/banded.cpp.o"
  "CMakeFiles/pim_numeric.dir/banded.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/interp.cpp.o"
  "CMakeFiles/pim_numeric.dir/interp.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/leastsq.cpp.o"
  "CMakeFiles/pim_numeric.dir/leastsq.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/lu.cpp.o"
  "CMakeFiles/pim_numeric.dir/lu.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/matrix.cpp.o"
  "CMakeFiles/pim_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/optimize.cpp.o"
  "CMakeFiles/pim_numeric.dir/optimize.cpp.o.d"
  "CMakeFiles/pim_numeric.dir/regression.cpp.o"
  "CMakeFiles/pim_numeric.dir/regression.cpp.o.d"
  "libpim_numeric.a"
  "libpim_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
