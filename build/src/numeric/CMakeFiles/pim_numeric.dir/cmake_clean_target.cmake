file(REMOVE_RECURSE
  "libpim_numeric.a"
)
