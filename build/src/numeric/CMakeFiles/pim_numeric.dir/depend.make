# Empty dependencies file for pim_numeric.
# This may be replaced when dependencies are built.
