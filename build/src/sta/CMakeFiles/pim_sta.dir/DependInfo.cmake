
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/awe.cpp" "src/sta/CMakeFiles/pim_sta.dir/awe.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/awe.cpp.o.d"
  "/root/repo/src/sta/calibrated.cpp" "src/sta/CMakeFiles/pim_sta.dir/calibrated.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/calibrated.cpp.o.d"
  "/root/repo/src/sta/composition.cpp" "src/sta/CMakeFiles/pim_sta.dir/composition.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/composition.cpp.o.d"
  "/root/repo/src/sta/elmore.cpp" "src/sta/CMakeFiles/pim_sta.dir/elmore.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/elmore.cpp.o.d"
  "/root/repo/src/sta/nldm_timer.cpp" "src/sta/CMakeFiles/pim_sta.dir/nldm_timer.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/nldm_timer.cpp.o.d"
  "/root/repo/src/sta/noise.cpp" "src/sta/CMakeFiles/pim_sta.dir/noise.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/noise.cpp.o.d"
  "/root/repo/src/sta/signoff.cpp" "src/sta/CMakeFiles/pim_sta.dir/signoff.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/signoff.cpp.o.d"
  "/root/repo/src/sta/spef.cpp" "src/sta/CMakeFiles/pim_sta.dir/spef.cpp.o" "gcc" "src/sta/CMakeFiles/pim_sta.dir/spef.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/pim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/pim_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/pim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/pim_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/pim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
