file(REMOVE_RECURSE
  "libpim_sta.a"
)
