# Empty dependencies file for pim_sta.
# This may be replaced when dependencies are built.
