file(REMOVE_RECURSE
  "CMakeFiles/pim_sta.dir/awe.cpp.o"
  "CMakeFiles/pim_sta.dir/awe.cpp.o.d"
  "CMakeFiles/pim_sta.dir/calibrated.cpp.o"
  "CMakeFiles/pim_sta.dir/calibrated.cpp.o.d"
  "CMakeFiles/pim_sta.dir/composition.cpp.o"
  "CMakeFiles/pim_sta.dir/composition.cpp.o.d"
  "CMakeFiles/pim_sta.dir/elmore.cpp.o"
  "CMakeFiles/pim_sta.dir/elmore.cpp.o.d"
  "CMakeFiles/pim_sta.dir/nldm_timer.cpp.o"
  "CMakeFiles/pim_sta.dir/nldm_timer.cpp.o.d"
  "CMakeFiles/pim_sta.dir/noise.cpp.o"
  "CMakeFiles/pim_sta.dir/noise.cpp.o.d"
  "CMakeFiles/pim_sta.dir/signoff.cpp.o"
  "CMakeFiles/pim_sta.dir/signoff.cpp.o.d"
  "CMakeFiles/pim_sta.dir/spef.cpp.o"
  "CMakeFiles/pim_sta.dir/spef.cpp.o.d"
  "libpim_sta.a"
  "libpim_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
