file(REMOVE_RECURSE
  "CMakeFiles/pim_models.dir/area.cpp.o"
  "CMakeFiles/pim_models.dir/area.cpp.o.d"
  "CMakeFiles/pim_models.dir/baseline.cpp.o"
  "CMakeFiles/pim_models.dir/baseline.cpp.o.d"
  "CMakeFiles/pim_models.dir/link.cpp.o"
  "CMakeFiles/pim_models.dir/link.cpp.o.d"
  "CMakeFiles/pim_models.dir/proposed.cpp.o"
  "CMakeFiles/pim_models.dir/proposed.cpp.o.d"
  "libpim_models.a"
  "libpim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
