# Empty compiler generated dependencies file for pim_models.
# This may be replaced when dependencies are built.
