file(REMOVE_RECURSE
  "libpim_models.a"
)
