file(REMOVE_RECURSE
  "libpim_cosi.a"
)
