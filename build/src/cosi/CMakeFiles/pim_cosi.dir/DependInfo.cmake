
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosi/architecture.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/architecture.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/architecture.cpp.o.d"
  "/root/repo/src/cosi/linkimpl.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/linkimpl.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/linkimpl.cpp.o.d"
  "/root/repo/src/cosi/mesh.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/mesh.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/mesh.cpp.o.d"
  "/root/repo/src/cosi/router.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/router.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/router.cpp.o.d"
  "/root/repo/src/cosi/spec.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/spec.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/spec.cpp.o.d"
  "/root/repo/src/cosi/specfile.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/specfile.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/specfile.cpp.o.d"
  "/root/repo/src/cosi/synthesis.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/synthesis.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/synthesis.cpp.o.d"
  "/root/repo/src/cosi/testcases.cpp" "src/cosi/CMakeFiles/pim_cosi.dir/testcases.cpp.o" "gcc" "src/cosi/CMakeFiles/pim_cosi.dir/testcases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffering/CMakeFiles/pim_buffering.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/pim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/pim_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/pim_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/pim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
