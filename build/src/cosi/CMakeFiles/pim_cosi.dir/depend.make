# Empty dependencies file for pim_cosi.
# This may be replaced when dependencies are built.
