file(REMOVE_RECURSE
  "CMakeFiles/pim_cosi.dir/architecture.cpp.o"
  "CMakeFiles/pim_cosi.dir/architecture.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/linkimpl.cpp.o"
  "CMakeFiles/pim_cosi.dir/linkimpl.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/mesh.cpp.o"
  "CMakeFiles/pim_cosi.dir/mesh.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/router.cpp.o"
  "CMakeFiles/pim_cosi.dir/router.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/spec.cpp.o"
  "CMakeFiles/pim_cosi.dir/spec.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/specfile.cpp.o"
  "CMakeFiles/pim_cosi.dir/specfile.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/synthesis.cpp.o"
  "CMakeFiles/pim_cosi.dir/synthesis.cpp.o.d"
  "CMakeFiles/pim_cosi.dir/testcases.cpp.o"
  "CMakeFiles/pim_cosi.dir/testcases.cpp.o.d"
  "libpim_cosi.a"
  "libpim_cosi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_cosi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
