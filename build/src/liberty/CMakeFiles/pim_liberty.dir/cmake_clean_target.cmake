file(REMOVE_RECURSE
  "libpim_liberty.a"
)
