file(REMOVE_RECURSE
  "CMakeFiles/pim_liberty.dir/cell.cpp.o"
  "CMakeFiles/pim_liberty.dir/cell.cpp.o.d"
  "CMakeFiles/pim_liberty.dir/libertyfile.cpp.o"
  "CMakeFiles/pim_liberty.dir/libertyfile.cpp.o.d"
  "CMakeFiles/pim_liberty.dir/library.cpp.o"
  "CMakeFiles/pim_liberty.dir/library.cpp.o.d"
  "libpim_liberty.a"
  "libpim_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
