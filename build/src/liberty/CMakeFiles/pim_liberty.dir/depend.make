# Empty dependencies file for pim_liberty.
# This may be replaced when dependencies are built.
