# Empty compiler generated dependencies file for pim_spice.
# This may be replaced when dependencies are built.
