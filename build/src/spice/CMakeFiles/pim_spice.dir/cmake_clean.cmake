file(REMOVE_RECURSE
  "CMakeFiles/pim_spice.dir/circuit.cpp.o"
  "CMakeFiles/pim_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/pim_spice.dir/deck.cpp.o"
  "CMakeFiles/pim_spice.dir/deck.cpp.o.d"
  "CMakeFiles/pim_spice.dir/measure.cpp.o"
  "CMakeFiles/pim_spice.dir/measure.cpp.o.d"
  "CMakeFiles/pim_spice.dir/mosfet.cpp.o"
  "CMakeFiles/pim_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/pim_spice.dir/transient.cpp.o"
  "CMakeFiles/pim_spice.dir/transient.cpp.o.d"
  "CMakeFiles/pim_spice.dir/waveform.cpp.o"
  "CMakeFiles/pim_spice.dir/waveform.cpp.o.d"
  "libpim_spice.a"
  "libpim_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
