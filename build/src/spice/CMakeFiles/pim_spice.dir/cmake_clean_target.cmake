file(REMOVE_RECURSE
  "libpim_spice.a"
)
