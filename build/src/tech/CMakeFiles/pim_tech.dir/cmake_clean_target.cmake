file(REMOVE_RECURSE
  "libpim_tech.a"
)
