# Empty compiler generated dependencies file for pim_tech.
# This may be replaced when dependencies are built.
