file(REMOVE_RECURSE
  "CMakeFiles/pim_tech.dir/techfile.cpp.o"
  "CMakeFiles/pim_tech.dir/techfile.cpp.o.d"
  "CMakeFiles/pim_tech.dir/technology.cpp.o"
  "CMakeFiles/pim_tech.dir/technology.cpp.o.d"
  "CMakeFiles/pim_tech.dir/wire.cpp.o"
  "CMakeFiles/pim_tech.dir/wire.cpp.o.d"
  "libpim_tech.a"
  "libpim_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
