# Empty compiler generated dependencies file for pim_buffering.
# This may be replaced when dependencies are built.
