file(REMOVE_RECURSE
  "CMakeFiles/pim_buffering.dir/optimize.cpp.o"
  "CMakeFiles/pim_buffering.dir/optimize.cpp.o.d"
  "CMakeFiles/pim_buffering.dir/vanginneken.cpp.o"
  "CMakeFiles/pim_buffering.dir/vanginneken.cpp.o.d"
  "libpim_buffering.a"
  "libpim_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
