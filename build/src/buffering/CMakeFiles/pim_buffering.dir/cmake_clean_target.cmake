file(REMOVE_RECURSE
  "libpim_buffering.a"
)
