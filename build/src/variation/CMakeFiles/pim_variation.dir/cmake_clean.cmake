file(REMOVE_RECURSE
  "CMakeFiles/pim_variation.dir/variation.cpp.o"
  "CMakeFiles/pim_variation.dir/variation.cpp.o.d"
  "libpim_variation.a"
  "libpim_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
