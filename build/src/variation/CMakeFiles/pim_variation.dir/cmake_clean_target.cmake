file(REMOVE_RECURSE
  "libpim_variation.a"
)
