# Empty compiler generated dependencies file for pim_variation.
# This may be replaced when dependencies are built.
