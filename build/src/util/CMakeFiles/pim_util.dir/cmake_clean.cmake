file(REMOVE_RECURSE
  "CMakeFiles/pim_util.dir/csv.cpp.o"
  "CMakeFiles/pim_util.dir/csv.cpp.o.d"
  "CMakeFiles/pim_util.dir/error.cpp.o"
  "CMakeFiles/pim_util.dir/error.cpp.o.d"
  "CMakeFiles/pim_util.dir/log.cpp.o"
  "CMakeFiles/pim_util.dir/log.cpp.o.d"
  "CMakeFiles/pim_util.dir/strings.cpp.o"
  "CMakeFiles/pim_util.dir/strings.cpp.o.d"
  "CMakeFiles/pim_util.dir/table.cpp.o"
  "CMakeFiles/pim_util.dir/table.cpp.o.d"
  "libpim_util.a"
  "libpim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
