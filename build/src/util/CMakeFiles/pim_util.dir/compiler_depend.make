# Empty compiler generated dependencies file for pim_util.
# This may be replaced when dependencies are built.
