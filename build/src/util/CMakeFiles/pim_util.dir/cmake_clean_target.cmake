file(REMOVE_RECURSE
  "libpim_util.a"
)
