# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("numeric")
subdirs("spice")
subdirs("tech")
subdirs("liberty")
subdirs("charlib")
subdirs("models")
subdirs("sta")
subdirs("buffering")
subdirs("cosi")
subdirs("variation")
