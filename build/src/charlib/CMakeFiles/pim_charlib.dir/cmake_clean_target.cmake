file(REMOVE_RECURSE
  "libpim_charlib.a"
)
