# Empty compiler generated dependencies file for pim_charlib.
# This may be replaced when dependencies are built.
