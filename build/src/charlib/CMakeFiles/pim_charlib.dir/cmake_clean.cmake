file(REMOVE_RECURSE
  "CMakeFiles/pim_charlib.dir/characterize.cpp.o"
  "CMakeFiles/pim_charlib.dir/characterize.cpp.o.d"
  "CMakeFiles/pim_charlib.dir/coeffs_io.cpp.o"
  "CMakeFiles/pim_charlib.dir/coeffs_io.cpp.o.d"
  "CMakeFiles/pim_charlib.dir/fit.cpp.o"
  "CMakeFiles/pim_charlib.dir/fit.cpp.o.d"
  "libpim_charlib.a"
  "libpim_charlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
