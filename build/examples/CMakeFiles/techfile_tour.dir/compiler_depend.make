# Empty compiler generated dependencies file for techfile_tour.
# This may be replaced when dependencies are built.
