file(REMOVE_RECURSE
  "CMakeFiles/techfile_tour.dir/techfile_tour.cpp.o"
  "CMakeFiles/techfile_tour.dir/techfile_tour.cpp.o.d"
  "techfile_tour"
  "techfile_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/techfile_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
