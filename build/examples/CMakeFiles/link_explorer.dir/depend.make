# Empty dependencies file for link_explorer.
# This may be replaced when dependencies are built.
