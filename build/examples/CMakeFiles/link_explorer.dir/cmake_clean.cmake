file(REMOVE_RECURSE
  "CMakeFiles/link_explorer.dir/link_explorer.cpp.o"
  "CMakeFiles/link_explorer.dir/link_explorer.cpp.o.d"
  "link_explorer"
  "link_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
