# Empty dependencies file for noc_synthesis.
# This may be replaced when dependencies are built.
