file(REMOVE_RECURSE
  "CMakeFiles/noc_synthesis.dir/noc_synthesis.cpp.o"
  "CMakeFiles/noc_synthesis.dir/noc_synthesis.cpp.o.d"
  "noc_synthesis"
  "noc_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
