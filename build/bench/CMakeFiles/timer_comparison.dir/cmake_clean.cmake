file(REMOVE_RECURSE
  "CMakeFiles/timer_comparison.dir/timer_comparison.cpp.o"
  "CMakeFiles/timer_comparison.dir/timer_comparison.cpp.o.d"
  "timer_comparison"
  "timer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
