# Empty dependencies file for timer_comparison.
# This may be replaced when dependencies are built.
