file(REMOVE_RECURSE
  "CMakeFiles/fig1_intrinsic_delay.dir/fig1_intrinsic_delay.cpp.o"
  "CMakeFiles/fig1_intrinsic_delay.dir/fig1_intrinsic_delay.cpp.o.d"
  "fig1_intrinsic_delay"
  "fig1_intrinsic_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_intrinsic_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
