# Empty dependencies file for fig1_intrinsic_delay.
# This may be replaced when dependencies are built.
