file(REMOVE_RECURSE
  "CMakeFiles/table3_noc_synthesis.dir/table3_noc_synthesis.cpp.o"
  "CMakeFiles/table3_noc_synthesis.dir/table3_noc_synthesis.cpp.o.d"
  "table3_noc_synthesis"
  "table3_noc_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_noc_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
