# Empty dependencies file for sizing_for_yield.
# This may be replaced when dependencies are built.
