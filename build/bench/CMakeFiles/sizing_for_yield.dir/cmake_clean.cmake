file(REMOVE_RECURSE
  "CMakeFiles/sizing_for_yield.dir/sizing_for_yield.cpp.o"
  "CMakeFiles/sizing_for_yield.dir/sizing_for_yield.cpp.o.d"
  "sizing_for_yield"
  "sizing_for_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_for_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
