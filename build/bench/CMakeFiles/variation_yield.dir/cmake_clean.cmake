file(REMOVE_RECURSE
  "CMakeFiles/variation_yield.dir/variation_yield.cpp.o"
  "CMakeFiles/variation_yield.dir/variation_yield.cpp.o.d"
  "variation_yield"
  "variation_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
