file(REMOVE_RECURSE
  "CMakeFiles/noise_analysis.dir/noise_analysis.cpp.o"
  "CMakeFiles/noise_analysis.dir/noise_analysis.cpp.o.d"
  "noise_analysis"
  "noise_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
