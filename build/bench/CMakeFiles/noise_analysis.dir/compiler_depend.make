# Empty compiler generated dependencies file for noise_analysis.
# This may be replaced when dependencies are built.
