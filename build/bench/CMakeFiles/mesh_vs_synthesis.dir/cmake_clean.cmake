file(REMOVE_RECURSE
  "CMakeFiles/mesh_vs_synthesis.dir/mesh_vs_synthesis.cpp.o"
  "CMakeFiles/mesh_vs_synthesis.dir/mesh_vs_synthesis.cpp.o.d"
  "mesh_vs_synthesis"
  "mesh_vs_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_vs_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
