# Empty dependencies file for mesh_vs_synthesis.
# This may be replaced when dependencies are built.
