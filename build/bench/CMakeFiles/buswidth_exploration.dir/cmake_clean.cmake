file(REMOVE_RECURSE
  "CMakeFiles/buswidth_exploration.dir/buswidth_exploration.cpp.o"
  "CMakeFiles/buswidth_exploration.dir/buswidth_exploration.cpp.o.d"
  "buswidth_exploration"
  "buswidth_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buswidth_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
