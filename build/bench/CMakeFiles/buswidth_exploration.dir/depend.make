# Empty dependencies file for buswidth_exploration.
# This may be replaced when dependencies are built.
