# Empty dependencies file for noc_yield.
# This may be replaced when dependencies are built.
