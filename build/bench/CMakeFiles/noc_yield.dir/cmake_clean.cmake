file(REMOVE_RECURSE
  "CMakeFiles/noc_yield.dir/noc_yield.cpp.o"
  "CMakeFiles/noc_yield.dir/noc_yield.cpp.o.d"
  "noc_yield"
  "noc_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
