file(REMOVE_RECURSE
  "CMakeFiles/table1_coefficients.dir/table1_coefficients.cpp.o"
  "CMakeFiles/table1_coefficients.dir/table1_coefficients.cpp.o.d"
  "table1_coefficients"
  "table1_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
