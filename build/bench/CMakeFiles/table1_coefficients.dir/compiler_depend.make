# Empty compiler generated dependencies file for table1_coefficients.
# This may be replaced when dependencies are built.
