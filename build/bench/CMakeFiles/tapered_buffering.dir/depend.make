# Empty dependencies file for tapered_buffering.
# This may be replaced when dependencies are built.
