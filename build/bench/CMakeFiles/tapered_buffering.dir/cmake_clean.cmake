file(REMOVE_RECURSE
  "CMakeFiles/tapered_buffering.dir/tapered_buffering.cpp.o"
  "CMakeFiles/tapered_buffering.dir/tapered_buffering.cpp.o.d"
  "tapered_buffering"
  "tapered_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapered_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
