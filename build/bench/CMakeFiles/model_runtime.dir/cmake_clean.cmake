file(REMOVE_RECURSE
  "CMakeFiles/model_runtime.dir/model_runtime.cpp.o"
  "CMakeFiles/model_runtime.dir/model_runtime.cpp.o.d"
  "model_runtime"
  "model_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
