# Empty dependencies file for model_runtime.
# This may be replaced when dependencies are built.
