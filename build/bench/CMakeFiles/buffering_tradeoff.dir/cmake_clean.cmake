file(REMOVE_RECURSE
  "CMakeFiles/buffering_tradeoff.dir/buffering_tradeoff.cpp.o"
  "CMakeFiles/buffering_tradeoff.dir/buffering_tradeoff.cpp.o.d"
  "buffering_tradeoff"
  "buffering_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffering_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
