# Empty compiler generated dependencies file for buffering_tradeoff.
# This may be replaced when dependencies are built.
