
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/leakage_area_accuracy.cpp" "bench/CMakeFiles/leakage_area_accuracy.dir/leakage_area_accuracy.cpp.o" "gcc" "bench/CMakeFiles/leakage_area_accuracy.dir/leakage_area_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/pim_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/pim_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/pim_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/pim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pim_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/pim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
