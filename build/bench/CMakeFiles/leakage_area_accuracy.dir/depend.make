# Empty dependencies file for leakage_area_accuracy.
# This may be replaced when dependencies are built.
