# Empty compiler generated dependencies file for leakage_area_accuracy.
# This may be replaced when dependencies are built.
