file(REMOVE_RECURSE
  "CMakeFiles/leakage_area_accuracy.dir/leakage_area_accuracy.cpp.o"
  "CMakeFiles/leakage_area_accuracy.dir/leakage_area_accuracy.cpp.o.d"
  "leakage_area_accuracy"
  "leakage_area_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_area_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
