# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_liberty[1]_include.cmake")
include("/root/repo/build/tests/test_charlib[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_buffering[1]_include.cmake")
include("/root/repo/build/tests/test_cosi[1]_include.cmake")
include("/root/repo/build/tests/test_variation[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
