file(REMOVE_RECURSE
  "CMakeFiles/test_buffering.dir/test_buffering.cpp.o"
  "CMakeFiles/test_buffering.dir/test_buffering.cpp.o.d"
  "test_buffering"
  "test_buffering.pdb"
  "test_buffering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
