file(REMOVE_RECURSE
  "CMakeFiles/test_cosi.dir/test_cosi.cpp.o"
  "CMakeFiles/test_cosi.dir/test_cosi.cpp.o.d"
  "test_cosi"
  "test_cosi.pdb"
  "test_cosi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
