# Empty dependencies file for test_cosi.
# This may be replaced when dependencies are built.
