file(REMOVE_RECURSE
  "CMakeFiles/test_charlib.dir/test_charlib.cpp.o"
  "CMakeFiles/test_charlib.dir/test_charlib.cpp.o.d"
  "test_charlib"
  "test_charlib.pdb"
  "test_charlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
