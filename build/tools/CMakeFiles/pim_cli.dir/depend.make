# Empty dependencies file for pim_cli.
# This may be replaced when dependencies are built.
