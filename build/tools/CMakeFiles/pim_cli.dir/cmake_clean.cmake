file(REMOVE_RECURSE
  "CMakeFiles/pim_cli.dir/cli_args.cpp.o"
  "CMakeFiles/pim_cli.dir/cli_args.cpp.o.d"
  "CMakeFiles/pim_cli.dir/pim_cli.cpp.o"
  "CMakeFiles/pim_cli.dir/pim_cli.cpp.o.d"
  "pim"
  "pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
