// bench_compare — the regression gate over pim_bench records
// (docs/observability.md).
//
//   bench_compare <baseline BENCH_*.json> <fresh BENCH_*.json>
//
// For every metric in the baseline: the fresh median may exceed the
// baseline median by at most the baseline's per-metric rel_tol, else the
// metric is a REGRESSION. rel_tol 0 marks deterministic counts, which
// must match in both directions (faster is still a drift — the count
// changed). A metric missing from the fresh run is a regression (the
// bench disappeared); metrics only in the fresh run are reported as new.
// Differing machine fingerprints produce a warning, not a failure — the
// committed trajectory may span machines, and tolerances are sized for
// that.
//
// Exit codes: 0 no regressions, 1 regression(s), 2 usage/parse failure.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "util/error.hpp"

namespace {

using pim::obs::JsonValue;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw pim::Error("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

double number_of(const JsonValue* v, double fallback = 0.0) {
  return (v != nullptr && v->kind == JsonValue::Kind::Number) ? v->number : fallback;
}

std::string fingerprint_text(const JsonValue& doc) {
  const JsonValue* fp = doc.find("fingerprint");
  if (fp == nullptr) return "";
  std::string out;
  for (const auto& [key, value] : fp->members) {
    if (!out.empty()) out += " ";
    out += key + "=" +
           (value.kind == JsonValue::Kind::String ? value.text
                                                  : std::to_string(value.number));
  }
  return out;
}

int run(int argc, char** argv) {
  if (argc != 3) {
    std::fputs("usage: bench_compare <baseline.json> <fresh.json>\n", stderr);
    return 2;
  }
  const JsonValue base = pim::obs::parse_json(slurp(argv[1]));
  const JsonValue fresh = pim::obs::parse_json(slurp(argv[2]));
  const JsonValue* base_metrics = base.find("metrics");
  const JsonValue* fresh_metrics = fresh.find("metrics");
  if (base_metrics == nullptr || fresh_metrics == nullptr) {
    std::fputs("bench_compare: missing 'metrics' object\n", stderr);
    return 2;
  }

  const std::string base_fp = fingerprint_text(base);
  const std::string fresh_fp = fingerprint_text(fresh);
  if (base_fp != fresh_fp)
    std::fprintf(stderr,
                 "bench_compare: warning: fingerprints differ\n  baseline: %s\n"
                 "  fresh:    %s\n",
                 base_fp.c_str(), fresh_fp.c_str());

  int regressions = 0;
  std::printf("%-34s %12s %12s %8s %7s  %s\n", "metric", "baseline", "fresh",
              "delta%", "tol%", "verdict");
  for (const auto& [name, entry] : base_metrics->members) {
    const double base_median = number_of(entry.find("median"));
    const double tol = number_of(entry.find("rel_tol"), 0.5);
    const JsonValue* fresh_entry = fresh_metrics->find(name);
    if (fresh_entry == nullptr) {
      std::printf("%-34s %12.3f %12s %8s %7.0f  REGRESSION (missing)\n",
                  name.c_str(), base_median, "-", "-", tol * 100);
      ++regressions;
      continue;
    }
    const double fresh_median = number_of(fresh_entry->find("median"));
    const double delta_pct =
        base_median != 0.0 ? 100.0 * (fresh_median - base_median) / base_median : 0.0;
    // The epsilon keeps exact self-comparisons from tripping on the
    // JSON round-trip of the medians.
    const bool slower = fresh_median > base_median * (1.0 + tol) + 1e-9;
    const bool drifted =
        tol == 0.0 && std::abs(fresh_median - base_median) > 1e-9;
    const bool bad = slower || drifted;
    std::printf("%-34s %12.3f %12.3f %+7.1f%% %6.0f%%  %s\n", name.c_str(),
                base_median, fresh_median, delta_pct, tol * 100,
                bad ? (drifted && !slower ? "REGRESSION (drift)" : "REGRESSION")
                    : "ok");
    if (bad) ++regressions;
  }
  for (const auto& [name, entry] : fresh_metrics->members) {
    (void)entry;
    if (base_metrics->find(name) == nullptr)
      std::printf("%-34s %12s %12.3f %8s %7s  new\n", name.c_str(), "-",
                  number_of(entry.find("median")), "-", "-");
  }

  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s) against %s\n",
                 regressions, argv[1]);
    return 1;
  }
  std::fprintf(stderr, "bench_compare: no regressions against %s\n", argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const pim::Error& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
