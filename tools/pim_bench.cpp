// pim_bench — the self-profiling benchmark harness behind the repo's
// perf trajectory (docs/observability.md).
//
// Runs every registered bench case (bench/common.hpp registry) for N
// repetitions, reports median + IQR per metric, stamps the record with
// the library versions and a machine fingerprint, and writes one
// canonical `BENCH_<UTC-date>.json`. Committed snapshots of that file at
// the repo root ARE the perf trajectory; scripts/check_perf.sh compares
// a fresh run against the latest one via tools/bench_compare.
//
//   pim_bench [--reps N] [--smoke] [--bench a,b] [--out file] [--list]
//
// --smoke restricts to the cheap cases (no characterization) — the
// tier-1 ctest case runs exactly that. Medians are reported so a single
// noisy repetition cannot fake a regression; deterministic counts carry
// rel_tol 0 and must not move at all.
#include <sys/utsname.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "buffering/optimize.hpp"
#include "cache/invalidate.hpp"
#include "cache/store.hpp"
#include "charlib/characterize.hpp"
#include "common.hpp"
#include "spice/batch.hpp"
#include "spice/plan.hpp"
#include "spice/transient.hpp"
#include "deadline/deadline.hpp"
#include "models/baseline.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "serve/server.hpp"
#include "serving_load.hpp"
#include "util/version.hpp"
#include "variation/variation.hpp"

namespace pim::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------- cases

// Closed-form baseline model throughput: no characterization, so this is
// the smoke-mode canary for the per-evaluation hot path.
std::vector<BenchMetric> bench_baseline_eval() {
  const Technology& tech = technology(TechNode::N65);
  const BakogluModel model(tech);
  const LinkContext ctx = link_context(tech, 5.0);
  LinkDesign design;
  design.num_repeaters = 5;
  constexpr int kEvals = 20000;
  double sink = 0.0;
  const auto start = Clock::now();
  for (int i = 0; i < kEvals; ++i) sink += model.evaluate(ctx, design).delay;
  const double ns = seconds_since(start) * 1e9 / kEvals;
  if (sink == 0.0) std::fputs("", stdout);  // keep the loop observable
  return {{"ns_per_eval", ns, "ns", 0.6}};
}

// Calibrated proposed-model throughput — the model the paper's tables
// rest on. Uses the cached fit (bench_out/coeffs_65nm.pimfit).
std::vector<BenchMetric> bench_model_eval() {
  static const BenchModel bm = cached_model(TechNode::N65);
  const LinkContext ctx = link_context(bm.tech, 5.0);
  LinkDesign design;
  design.num_repeaters = 5;
  constexpr int kEvals = 20000;
  double sink = 0.0;
  const auto start = Clock::now();
  for (int i = 0; i < kEvals; ++i) sink += bm.model.evaluate(ctx, design).delay;
  const double ns = seconds_since(start) * 1e9 / kEvals;
  if (sink == 0.0) std::fputs("", stdout);
  return {{"ns_per_eval", ns, "ns", 0.6}};
}

// Full buffering search (uncached path): wall time plus the candidate
// count, which is deterministic and must never drift.
std::vector<BenchMetric> bench_buffering_search() {
  static const BenchModel bm = cached_model(TechNode::N65);
  const LinkContext ctx = link_context(bm.tech, 5.0);
  const auto start = Clock::now();
  const BufferingResult r = optimize_buffering(bm.model, ctx);
  const double us = seconds_since(start) * 1e6;
  return {{"us_per_search", us, "us", 0.6},
          {"evaluations", static_cast<double>(r.evaluations), "count", 0.0}};
}

// Monte-Carlo yield sweep: wall time plus the seeded mean delay, which
// pins the sampler's determinism into the trajectory.
std::vector<BenchMetric> bench_mc_yield() {
  static const BenchModel bm = cached_model(TechNode::N65);
  const LinkContext ctx = link_context(bm.tech, 5.0);
  LinkDesign design;
  design.num_repeaters = 5;
  const auto start = Clock::now();
  const MonteCarloResult mc = monte_carlo_link(bm.model, ctx, design, 200, 2026);
  const double ms = seconds_since(start) * 1e3;
  return {{"ms_per_sweep", ms, "ms", 0.6},
          {"mean_delay_ps", mc.mean_delay * 1e12, "ps", 0.0}};
}

// Charlib sweep A/B over the same cell: the scalar reference engine (one
// netlist build + solve per table point) against the batched
// compiled-plan path the sweeps now run on (docs/kernels.md). The tables
// must match bit for bit — the ratio is only meaningful for identical
// results — and check_perf.sh gates ms_per_sweep_reference /
// ms_per_sweep_batched at >= 2x.
std::vector<BenchMetric> bench_transient_kernel() {
  const Technology& tech = technology(TechNode::N65);
  CharacterizationOptions opt;
  opt.slew_axis = {20e-12, 100e-12, 300e-12};
  opt.fanout_axis = {2.0, 8.0, 20.0};
  CharacterizationOptions ref_opt = opt;
  ref_opt.reference_engine = true;

  auto start = Clock::now();
  const RepeaterCell ref = characterize_cell(tech, CellKind::Buffer, 8, ref_opt);
  const double ref_ms = seconds_since(start) * 1e3;
  start = Clock::now();
  const RepeaterCell fast = characterize_cell(tech, CellKind::Buffer, 8, opt);
  const double fast_ms = seconds_since(start) * 1e3;

  const TimingTable* a[2] = {&ref.rise, &ref.fall};
  const TimingTable* b[2] = {&fast.rise, &fast.fall};
  for (int e = 0; e < 2; ++e)
    for (size_t i = 0; i < a[e]->slew_axis.size(); ++i)
      for (size_t j = 0; j < a[e]->load_axis.size(); ++j)
        require(a[e]->delay(i, j) == b[e]->delay(i, j) &&
                    a[e]->out_slew(i, j) == b[e]->out_slew(i, j),
                "transient_kernel: batched sweep diverged from the reference engine");
  return {{"ms_per_sweep_reference", ref_ms, "ms", 0.6},
          {"ms_per_sweep_batched", fast_ms, "ms", 0.6}};
}

// Monte-Carlo cost centers A/B, both legs asserted bit-identical
// in-bench. Deck level: 32 width/load-perturbed variants of one inverter
// deck run as a single lockstep transient batch vs scalar reference runs
// of the same perturbed netlists. Model level: the per-sample evaluation
// monte_carlo_link historically performed (construct a ProposedModel per
// corner, which hashes the fit into a cache signature) vs the
// evaluate_link fast path it uses now; check_perf.sh gates the
// model-path ratio at >= 3x — the speedup behind mc_yield.
std::vector<BenchMetric> bench_mc_batch() {
  const Technology& tech = technology(TechNode::N65);
  const RepeaterSizing sz = repeater_sizing(tech, CellKind::Inverter, 8);
  const double load0 = 10e-15;
  const auto build_deck = [&](double wn, double wp, double load) {
    struct Deck {
      Circuit c;
      NodeId in = 0, out = 0;
    } d;
    const NodeId vdd = d.c.add_node("vdd");
    d.in = d.c.add_node("in");
    d.out = d.c.add_node("out");
    d.c.add_vsource(vdd, Waveform::dc(tech.vdd));
    d.c.add_vsource(d.in, Waveform::ramp(0.0, tech.vdd, 20e-12, 50e-12));
    d.c.add_mosfet(MosType::Nmos, tech.nmos, wn, d.in, d.out, d.c.ground());
    d.c.add_mosfet(MosType::Pmos, tech.pmos, wp, d.in, d.out, vdd);
    d.c.add_capacitor(d.out, d.c.ground(), load);
    return d;
  };
  TransientOptions topt;
  topt.t_stop = 0.5e-9;
  topt.dt = 1e-12;

  constexpr int kLanes = 32;
  Rng rng(2026);
  std::vector<LaneSpec> lanes(kLanes);
  std::vector<std::array<double, 3>> corners(kLanes);  // wn, wp, load
  for (int i = 0; i < kLanes; ++i) {
    corners[i] = {sz.wn_out * rng.normal(1.0, 0.05),
                  sz.wp_out * rng.normal(1.0, 0.05),
                  load0 * rng.normal(1.0, 0.05)};
    lanes[i].mosfet_width = {{0, corners[i][0]}, {1, corners[i][1]}};
    lanes[i].cap_farads = {{0, corners[i][2]}};
  }

  const auto base = build_deck(sz.wn_out, sz.wp_out, load0);
  auto start = Clock::now();
  const CompiledCircuit plan =
      CompiledCircuit::compile(base.c, topt.band_threshold);
  const TransientBatch batch =
      run_transient_batch(plan, topt, {base.in, base.out}, lanes);
  const double batch_us = seconds_since(start) * 1e6 / kLanes;

  start = Clock::now();
  std::vector<TransientResult> solo;
  solo.reserve(kLanes);
  for (int i = 0; i < kLanes; ++i) {
    const auto deck = build_deck(corners[i][0], corners[i][1], corners[i][2]);
    solo.push_back(run_transient_reference(deck.c, topt, {deck.in, deck.out}));
  }
  const double solo_us = seconds_since(start) * 1e6 / kLanes;
  for (int i = 0; i < kLanes; ++i) {
    const TransientResult& lane = batch.lanes[i].value();
    bool same = lane.time == solo[i].time && lane.traces.size() == solo[i].traces.size();
    for (size_t t = 0; same && t < lane.traces.size(); ++t)
      same = lane.traces[t].node == solo[i].traces[t].node &&
             lane.traces[t].values == solo[i].traces[t].values;
    require(same, "mc_batch: lockstep lane diverged from its scalar reference run");
  }

  static const BenchModel bm = cached_model(TechNode::N65);
  const LinkContext ctx = link_context(bm.tech, 5.0);
  LinkDesign design;
  design.num_repeaters = 5;
  constexpr int kSamples = 200;
  double sink_model = 0.0;
  start = Clock::now();
  for (int i = 0; i < kSamples; ++i) {
    const ProposedModel per_sample(bm.tech, bm.fit);
    sink_model += per_sample.evaluate(ctx, design).delay;
  }
  const double model_us = seconds_since(start) * 1e6 / kSamples;
  double sink_fast = 0.0;
  start = Clock::now();
  for (int i = 0; i < kSamples; ++i)
    sink_fast += evaluate_link(bm.tech, bm.fit, ctx, design).delay;
  const double fast_us = seconds_since(start) * 1e6 / kSamples;
  require(sink_model == sink_fast,
          "mc_batch: evaluate_link diverged from ProposedModel::evaluate");

  return {{"us_per_lane_batched", batch_us, "us", 0.6},
          {"us_per_lane_reference", solo_us, "us", 0.6},
          {"us_per_sample_modelpath", model_us, "us", 0.6},
          {"us_per_sample_fastpath", fast_us, "us", 0.8}};
}

// Cache tiers in isolation, on a scratch store: memory-hit and disk-hit
// (read + decode + verify) latency for a 4 KiB payload.
std::vector<BenchMetric> bench_cache_roundtrip() {
  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "pim_bench_cache").string();
  fs::remove_all(root);
  cache::Store::Options opt;
  opt.disk_dir = root;
  cache::Store store(opt);
  const std::string payload(4096, 'x');
  constexpr int kKeys = 64;
  std::vector<cache::CacheKey> keys;
  for (int i = 0; i < kKeys; ++i) {
    cache::KeyBuilder kb("bench");
    kb.field("i", static_cast<int64_t>(i));
    keys.push_back(kb.finish());
    store.put(keys.back(), payload);
  }
  constexpr int kGets = 2000;
  auto start = Clock::now();
  for (int i = 0; i < kGets; ++i) (void)store.get(keys[i % kKeys]);
  const double mem_ns = seconds_since(start) * 1e9 / kGets;
  store.clear_memory();
  constexpr int kDiskGets = 200;
  start = Clock::now();
  for (int i = 0; i < kDiskGets; ++i) {
    (void)store.get(keys[i % kKeys]);
    if (i % kKeys == kKeys - 1) store.clear_memory();
  }
  const double disk_us = seconds_since(start) * 1e6 / kDiskGets;
  fs::remove_all(root);
  return {{"mem_get_ns", mem_ns, "ns", 0.6}, {"disk_get_us", disk_us, "us", 0.8}};
}

// Provenance-graph operations at the scale of a multi-corner sweep: scan
// every manifest sidecar under a populated root, then partition a
// 128-artifact graph (64 fits, each feeding one buffering search) for an
// 8-corner retune. The dirty/reuse counts are exact by construction, so
// they gate at rel_tol 0 — a dirty-rule regression fails check_perf.sh,
// not just a latency budget.
std::vector<BenchMetric> bench_incremental_recompute() {
  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "pim_bench_incr").string();
  fs::remove_all(root);
  cache::Store::Options opt;
  opt.disk_dir = root;
  cache::Store store(opt);
  constexpr int kCorners = 64;
  std::vector<cache::CacheKey> fit_keys;
  for (int i = 0; i < kCorners; ++i) {
    cache::Tracked scope;
    cache::KeyBuilder kb("fit");
    kb.facet("tech", "bench@corner-" + std::to_string(i),
             "content-" + std::to_string(i));
    const cache::CacheKey key = kb.finish();
    store.put(key, "fit-payload");
    fit_keys.push_back(key);
  }
  for (int i = 0; i < kCorners; ++i) {
    cache::Tracked scope;
    cache::KeyBuilder kb("buffering");
    kb.field("i", static_cast<int64_t>(i));
    const cache::CacheKey key = kb.finish();
    scope.upstream(fit_keys[i]);
    store.put(key, "buffering-payload");
  }
  auto start = Clock::now();
  const std::vector<cache::Manifest> manifests = cache::scan_manifests(root);
  const double scan_us = seconds_since(start) * 1e6;
  std::vector<cache::Facet> changed;
  for (int i = 0; i < 8; ++i)
    changed.push_back(
        {"tech", "bench@corner-" + std::to_string(i), "retuned"});
  constexpr int kReps = 200;
  start = Clock::now();
  cache::DirtyCone cone;
  for (int r = 0; r < kReps; ++r) cone = cache::dirty_cone(manifests, changed);
  const double cone_us = seconds_since(start) * 1e6 / kReps;
  fs::remove_all(root);
  return {{"scan_us", scan_us, "us", 0.8},
          {"cone_us", cone_us, "us", 0.8},
          {"dirty_keys", static_cast<double>(cone.dirty.size()), "keys", 0.0},
          {"reuse_keys", static_cast<double>(cone.reuse.size()), "keys", 0.0}};
}

// Engine dispatch overhead: many small regions through the pool path
// (threads pinned to 2 so the pool engages even on one core).
std::vector<BenchMetric> bench_exec_engine() {
  constexpr int kRegions = 50;
  constexpr size_t kItems = 1000;
  std::vector<double> out(kItems);
  exec::ParallelOptions opt;
  opt.threads = 2;
  const auto start = Clock::now();
  for (int r = 0; r < kRegions; ++r)
    exec::parallel_for(kItems, [&](size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                       opt);
  const double us = seconds_since(start) * 1e6 / kRegions;
  return {{"us_per_region", us, "us", 0.8}};
}

// The metric machinery itself: histogram-timer record cost with
// collection on, and the disabled-path cost (the one relaxed load +
// branch contract every instrumented hot path relies on).
std::vector<BenchMetric> bench_hist_timer() {
  obs::Timer& timer = obs::registry().timer("bench.hist_timer.scratch");
  constexpr int kRecords = 1000000;
  obs::set_enabled(true);
  auto start = Clock::now();
  for (int i = 0; i < kRecords; ++i) timer.record_ns(i & 1023);
  const double on_ns = seconds_since(start) * 1e9 / kRecords;
  obs::set_enabled(false);
  start = Clock::now();
  for (int i = 0; i < kRecords; ++i) timer.record_ns(i & 1023);
  const double off_ns = seconds_since(start) * 1e9 / kRecords;
  timer.reset();
  return {{"record_ns", on_ns, "ns", 0.6},
          {"record_disabled_ns", off_ns, "ns", 0.8}};
}

// The cooperative-cancellation poll every exec chunk pays (src/deadline):
// the disengaged fast path every normal run takes per item, the armed
// path (deadline set, clock consulted), and a pooled exec region with a
// far deadline armed — compare against exec_engine.us_per_region for the
// relative cost of running under a budget.
std::vector<BenchMetric> bench_deadline() {
  constexpr int kChecks = 1000000;
  deadline::reset();
  int sink = 0;
  auto start = Clock::now();
  for (int i = 0; i < kChecks; ++i) sink += static_cast<int>(deadline::check());
  const double off_ns = seconds_since(start) * 1e9 / kChecks;
  {
    deadline::Scope budget(3'600'000);  // armed, but an hour away
    start = Clock::now();
    for (int i = 0; i < kChecks; ++i) sink += static_cast<int>(deadline::check());
  }
  const double on_ns = seconds_since(start) * 1e9 / kChecks;
  if (sink != 0) std::fputs("", stdout);  // keep the loops observable

  constexpr int kRegions = 50;
  constexpr size_t kItems = 1000;
  std::vector<double> out(kItems);
  exec::ParallelOptions opt;
  opt.threads = 2;
  double region_us = 0.0;
  {
    deadline::Scope budget(3'600'000);
    start = Clock::now();
    for (int r = 0; r < kRegions; ++r)
      exec::parallel_for(kItems,
                         [&](size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                         opt);
    region_us = seconds_since(start) * 1e6 / kRegions;
  }
  deadline::reset();
  return {{"check_disengaged_ns", off_ns, "ns", 0.8},
          {"check_armed_ns", on_ns, "ns", 0.8},
          {"armed_region_us", region_us, "us", 0.8}};
}

// Warm-daemon serving throughput over the wire protocol (src/serve,
// docs/serving.md), via the load driver shared with the standalone
// bench/serving_throughput load generator. An in-process Server on a
// Unix socket serves a pipelined burst of single evaluate requests,
// lock-step round trips, and one large batch line; the warm-up round
// trip (fit load + resident-model build) happens before any clock
// starts. us_per_req, the latency quantiles, and batch_item_us gate
// the perf trajectory; req_per_s restates the burst median as the
// throughput the serving docs promise (>= 10k simple model evals/s
// warm) — it carries an effectively unbounded rel_tol because the
// gate hunts increases and for a throughput a higher fresh number is
// the improvement.
std::vector<BenchMetric> bench_serving_throughput() {
  static const BenchModel bm = cached_model(TechNode::N65);
  (void)bm;  // materializes bench_out/coeffs_65nm.pimfit for the daemon
  const std::string cache_dir = out_dir() + "/serving_bench.cache";
  cache::set_dir(cache_dir);
  serve::ServerOptions sopt;
  sopt.socket_path = out_dir() + "/pim_bench_serving.sock";
  sopt.workers = 2;
  constexpr int kPipelined = 8192;
  sopt.queue_limit = kPipelined + 64;  // admission must never reject the burst
  serve::Server server(sopt);
  server.start();
  serving::LoadReport r;
  try {
    r = serving::drive(sopt.socket_path, kPipelined, /*lockstep=*/512,
                       /*batch_items=*/512);
  } catch (...) {
    server.stop();
    cache::set_dir("");
    throw;
  }
  server.stop();
  cache::set_dir("");
  std::filesystem::remove(sopt.socket_path);
  return {{"us_per_req", r.pipelined_seconds * 1e6 / r.pipelined_requests,
           "us", 0.8},
          {"req_per_s", r.pipelined_requests / r.pipelined_seconds, "req/s",
           1e9},
          {"rtt_p50_us", serving::rtt_quantile(r.rtt_us, 0.5), "us", 0.8},
          {"rtt_p99_us", serving::rtt_quantile(r.rtt_us, 0.99), "us", 1.5},
          {"batch_item_us", r.batch_seconds * 1e6 / r.batch_items, "us", 0.8}};
}

const BenchRegistrar kCases[] = {
    BenchRegistrar{{"baseline_eval", /*smoke=*/true, bench_baseline_eval}},
    BenchRegistrar{{"model_eval", /*smoke=*/false, bench_model_eval}},
    BenchRegistrar{{"buffering_search", /*smoke=*/false, bench_buffering_search}},
    BenchRegistrar{{"mc_yield", /*smoke=*/false, bench_mc_yield}},
    BenchRegistrar{{"transient_kernel", /*smoke=*/false, bench_transient_kernel}},
    BenchRegistrar{{"mc_batch", /*smoke=*/false, bench_mc_batch}},
    BenchRegistrar{{"serving_throughput", /*smoke=*/false,
                    bench_serving_throughput}},
    BenchRegistrar{{"cache_roundtrip", /*smoke=*/true, bench_cache_roundtrip}},
    BenchRegistrar{{"incremental_recompute", /*smoke=*/true,
                    bench_incremental_recompute}},
    BenchRegistrar{{"deadline", /*smoke=*/true, bench_deadline}},
    BenchRegistrar{{"exec_engine", /*smoke=*/true, bench_exec_engine}},
    BenchRegistrar{{"hist_timer", /*smoke=*/true, bench_hist_timer}},
};

// ------------------------------------------------------------- harness

struct MetricSeries {
  std::vector<double> values;  // one per repetition, in run order
  std::string unit;
  double rel_tol = 0.5;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string utc_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

std::string fingerprint_json() {
  struct utsname un{};
  uname(&un);
  std::ostringstream os;
  os << "{\"os\": " << obs::json_quote(std::string(un.sysname) + " " + un.release)
     << ", \"machine\": " << obs::json_quote(un.machine)
     << ", \"cores\": " << std::thread::hardware_concurrency()
     << ", \"compiler\": " << obs::json_quote(__VERSION__) << "}";
  return os.str();
}

int run(int argc, char** argv) {
  int reps = 5;
  bool smoke = false, list = false;
  std::string only, out_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pim_bench: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = std::atoi(value().c_str());
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--bench") {
      only = value();
    } else if (arg == "--out") {
      out_file = value();
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help") {
      std::fputs(
          "usage: pim_bench [--reps N] [--smoke] [--bench a,b] [--out file] "
          "[--list]\n",
          stdout);
      return 0;
    } else {
      std::fprintf(stderr, "pim_bench: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  auto selected = [&](const BenchCase& c) {
    if (smoke && !c.smoke) return false;
    if (only.empty()) return true;
    return ("," + only + ",").find("," + c.name + ",") != std::string::npos;
  };

  if (list) {
    for (const BenchCase& c : bench_registry())
      std::printf("%-18s %s\n", c.name.c_str(), c.smoke ? "smoke" : "");
    return 0;
  }

  const int64_t harness_start = obs::now_ns();

  // Repetition-major order: every case sees every phase of the process
  // (cold/warm caches, allocator state) rather than one case hogging one
  // phase, which makes medians robust against drift during the run.
  std::map<std::string, MetricSeries> series;
  for (int rep = 0; rep < reps; ++rep) {
    for (const BenchCase& c : bench_registry()) {
      if (!selected(c)) continue;
      for (const BenchMetric& m : c.fn()) {
        MetricSeries& s = series[c.name + "." + m.name];
        s.values.push_back(m.value);
        s.unit = m.unit;
        s.rel_tol = m.rel_tol;
      }
    }
    std::fprintf(stderr, "pim_bench: rep %d/%d done\n", rep + 1, reps);
  }
  if (series.empty()) {
    std::fprintf(stderr, "pim_bench: no cases selected\n");
    return 2;
  }

  std::ostringstream os;
  os << "{\n  \"schema\": \"pim.bench.v1\",\n";
  os << "  \"date\": " << obs::json_quote(utc_date()) << ",\n";
  os << "  \"version\": {\"pim\": " << obs::json_quote(kVersion)
     << ", \"api\": " << kApiVersionNumber
     << ", \"cache_format\": " << kCacheFormatVersion << "},\n";
  os << "  \"fingerprint\": " << fingerprint_json() << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"metrics\": {";
  bool first = true;
  for (const auto& [name, s] : series) {
    std::vector<double> sorted = s.values;
    std::sort(sorted.begin(), sorted.end());
    const double median = quantile(sorted, 0.5);
    const double iqr = quantile(sorted, 0.75) - quantile(sorted, 0.25);
    os << (first ? "\n    " : ",\n    ") << obs::json_quote(name)
       << ": {\"median\": " << obs::json_number(median)
       << ", \"iqr\": " << obs::json_number(iqr)
       << ", \"unit\": " << obs::json_quote(s.unit)
       << ", \"rel_tol\": " << obs::json_number(s.rel_tol) << "}";
    std::printf("%-34s median %12.3f %-5s iqr %10.3f\n", name.c_str(), median,
                s.unit.c_str(), iqr);
    first = false;
  }
  os << "\n  }\n}\n";

  if (out_file.empty()) out_file = "BENCH_" + utc_date() + ".json";
  {
    std::ofstream out(out_file);
    if (!out.good()) {
      std::fprintf(stderr, "pim_bench: cannot write '%s'\n", out_file.c_str());
      return 3;
    }
    out << os.str();
  }
  std::fprintf(stderr, "pim_bench: wrote %s\n", out_file.c_str());

  // The harness is a run like any other: append its own ledger record.
  if (const char* env = std::getenv("PIM_LEDGER");
      env == nullptr || std::string(env) != "off") {
    obs::LedgerRecord record;
    record.command = "pim_bench";
    record.flags.emplace_back("reps", std::to_string(reps));
    if (smoke) record.flags.emplace_back("smoke", "");
    if (!only.empty()) record.flags.emplace_back("bench", only);
    record.flags.emplace_back("out", out_file);
    record.cache_mode = cache::mode_name(cache::mode());
    record.threads = exec::threads();
    record.wall_ns = obs::now_ns() - harness_start;
    obs::append_ledger_record(out_dir() + "/ledger.jsonl", record);
  }
  return 0;
}

}  // namespace
}  // namespace pim::bench

int main(int argc, char** argv) { return pim::bench::run(argc, argv); }
