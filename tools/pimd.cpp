// pimd — the model-serving daemon (docs/serving.md).
//
// Binds a Unix-domain socket (and/or loopback TCP), then serves
// newline-delimited JSON wire requests (src/api/wire.hpp) until
// SIGINT/SIGTERM trips the cooperative cancel flag, at which point it
// drains gracefully: listeners close, every accepted request finishes
// (in-flight flows degrade to partial results), all responses flush,
// and the run-ledger record is written.
//
// The point of the daemon shape: the process stays alive, so
// technologies, calibrated fits, resident models, and the on-disk
// result cache stay warm across millions of requests — a warm model
// evaluation costs microseconds instead of a fresh characterization.
//
// Flags: --socket <path>, --tcp <port> (0 = ephemeral, printed on the
// ready line), --workers <n>, --queue <n>, --warm <tech[,tech...]>,
// plus every global pim flag (--threads, --cache, --cache-dir,
// --log-level, --ledger, ...).
#include <cstdio>
#include <sstream>
#include <string>

#include "api/pim_api.hpp"
#include "deadline/deadline.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include "cli_args.hpp"

namespace pim {
namespace {

const std::vector<cli::FlagSpec>& pimd_flag_specs() {
  static const std::vector<cli::FlagSpec> flags = {
      {"socket", cli::FlagType::String, "path", "",
       "serve on this Unix-domain socket (replaces an existing file)"},
      {"tcp", cli::FlagType::Int, "port", "",
       "also serve on 127.0.0.1:<port>; 0 binds an ephemeral port"},
      {"workers", cli::FlagType::Int, "n", "1",
       "dispatcher threads (flows parallelize internally via --threads)"},
      {"queue", cli::FlagType::Int, "n", "64",
       "admission limit: pending requests beyond this are rejected as overloaded"},
      {"warm", cli::FlagType::String, "tech[,tech...]", "",
       "calibrate these technologies at startup so first requests hit warm"},
  };
  return flags;
}

std::string pimd_usage() {
  std::ostringstream os;
  os << "usage: pimd [--socket path] [--tcp port] [flags]\n"
     << "  model-serving daemon over the pim wire protocol (docs/serving.md)\n"
     << "flags:\n";
  for (const cli::FlagSpec& f : pimd_flag_specs()) {
    os << "  --" << f.name;
    if (!f.value_name.empty()) os << " " << f.value_name;
    os << "  " << f.help;
    if (!f.default_text.empty()) os << " (default: " << f.default_text << ")";
    os << "\n";
  }
  os << "plus every global pim flag (pim --help lists them)\n"
     << "SIGINT/SIGTERM drain gracefully: accepted requests finish, responses "
        "flush\n";
  return os.str();
}

// Characterize + calibrate each named technology before the listeners
// open, so the very first client request hits the resident memos.
void warm_techs(const std::string& list) {
  for (const std::string& tech : split(list, ',')) {
    if (tech.empty()) continue;
    log_info("pimd: warming ", tech, "...");
    api::FitRequest req;
    req.tech = tech;
    auto result = api::run_fit(req);
    if (!result.ok()) log_warn("pimd: warm ", tech, " failed: ", result.error().what());
  }
}

int pimd_main(int argc, char** argv) {
  const cli::Args args(argc, argv, 1);
  if (args.has("help")) {
    std::fputs(pimd_usage().c_str(), stdout);
    return 0;
  }
  if (args.has("version")) {
    std::fputs(cli::version_text().c_str(), stdout);
    return 0;
  }
  {
    std::vector<std::string> known;
    for (const cli::FlagSpec& f : pimd_flag_specs()) known.push_back(f.name);
    cli::check_known_with_globals(args, std::move(known));
  }
  fault::configure_from_env();
  cli::apply_global_flags(args);

  serve::ServerOptions options;
  options.socket_path = args.get("socket", "");
  options.tcp_port = static_cast<int>(args.get_long("tcp", -1));
  options.workers = static_cast<int>(args.get_long("workers", 1));
  options.queue_limit = static_cast<int>(args.get_long("queue", 64));

  const int64_t start_ns = obs::now_ns();
  int exit_code = 0;
  try {
    if (args.has("warm")) warm_techs(args.get("warm"));
    serve::Server server(options);
    server.start();
    // Machine-readable ready line on stdout: scripts and tests block on
    // this to learn the resolved ephemeral port.
    std::printf("{\"pimd\":\"ready\",\"socket\":\"%s\",\"tcp_port\":%d}\n",
                options.socket_path.c_str(), server.tcp_port());
    std::fflush(stdout);
    server.run();
  } catch (const Error& e) {
    log_error(e.what());
    exit_code = cli::exit_code_for(e);
  }
  cli::append_run_ledger("pimd", args, exit_code, obs::now_ns() - start_ns);
  return exit_code;
}

}  // namespace
}  // namespace pim

int main(int argc, char** argv) {
  if (!pim::log_level_env_override()) pim::set_log_level(pim::LogLevel::Info);
  // First SIGINT/SIGTERM trips the cooperative cancel flag — Server::run
  // sees it and drains. A second signal kills outright (SA_RESETHAND).
  pim::deadline::install_signal_handlers();
  try {
    return pim::pimd_main(argc, argv);
  } catch (const pim::Error& e) {
    pim::log_error(e.what());
    return pim::cli::exit_code_for(e);
  } catch (const std::exception& e) {
    pim::log_error("internal error: ", e.what());
    return 4;
  }
}
