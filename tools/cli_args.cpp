#include "cli_args.hpp"

#include <algorithm>
#include <cstdio>

#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pim::cli {

Args::Args(int argc, char** argv, int from) {
  for (int i = from; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      const std::string name = token.substr(2);
      require(!name.empty(), "cli: bare '--' is not a flag", ErrorCode::bad_input);
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "";
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::string Args::positional(size_t index, const std::string& fallback) const {
  return index < positionals_.size() ? positionals_[index] : fallback;
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value",
          ErrorCode::bad_input);
  return parse_double(it->second);
}

long Args::get_long(const std::string& flag, long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value",
          ErrorCode::bad_input);
  return parse_long(it->second);
}

void Args::check_known(const std::vector<std::string>& known) const {
  for (const auto& [flag, value] : flags_) {
    (void)value;
    require(std::find(known.begin(), known.end(), flag) != known.end(),
            "cli: unknown flag '--" + flag + "'", ErrorCode::bad_input);
  }
}

const std::vector<std::string>& global_flags() {
  static const std::vector<std::string> flags = {"log-level", "profile", "trace",
                                                 "inject-fault", "threads"};
  return flags;
}

void check_known_with_globals(const Args& args, std::vector<std::string> known) {
  known.insert(known.end(), global_flags().begin(), global_flags().end());
  args.check_known(known);
}

void apply_global_flags(const Args& args) {
  if (args.has("log-level")) {
    LogLevel level;
    require(log_level_from_name(args.get("log-level"), level),
            "cli: --log-level must be debug|info|warn|error|off",
            ErrorCode::bad_input);
    set_log_level(level);
  }
  if (args.has("inject-fault")) {
    require(!args.get("inject-fault").empty(),
            "cli: --inject-fault needs a site[:prob[:seed]] spec",
            ErrorCode::bad_input);
    fault::configure(args.get("inject-fault"));
  }
  if (args.has("threads")) {
    const long n = args.get_long("threads", 0);
    require(n >= 1, "cli: --threads must be a positive integer",
            ErrorCode::bad_input);
    exec::set_threads(static_cast<int>(n));
  }
  if (args.has("profile")) obs::set_enabled(true);
  if (args.has("trace")) {
    require(!args.get("trace").empty(), "cli: --trace needs an output path",
            ErrorCode::bad_input);
    obs::set_enabled(true);
    obs::set_trace_enabled(true);
  }
}

void write_observability_reports(const Args& args) {
  if (args.has("profile")) {
    const std::string path = args.get("profile");
    if (path.empty()) {
      // Bare --profile: the metrics ARE the requested output, on stdout.
      std::fputs(obs::metrics_to_json(obs::registry().snapshot()).c_str(), stdout);
    } else {
      obs::save_metrics_json(path);
      log_info("wrote ", path);
    }
  }
  if (args.has("trace")) {
    obs::save_trace(args.get("trace"));
    log_info("wrote ", args.get("trace"));
  }
}

}  // namespace pim::cli
