#include "cli_args.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim::cli {

Args::Args(int argc, char** argv, int from) {
  for (int i = from; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      const std::string name = token.substr(2);
      require(!name.empty(), "cli: bare '--' is not a flag");
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "";
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::string Args::positional(size_t index, const std::string& fallback) const {
  return index < positionals_.size() ? positionals_[index] : fallback;
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value");
  return parse_double(it->second);
}

long Args::get_long(const std::string& flag, long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value");
  return parse_long(it->second);
}

void Args::check_known(const std::vector<std::string>& known) const {
  for (const auto& [flag, value] : flags_) {
    (void)value;
    require(std::find(known.begin(), known.end(), flag) != known.end(),
            "cli: unknown flag '--" + flag + "'");
  }
}

}  // namespace pim::cli
