#include "cli_args.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "api/pim_api.hpp"
#include "cache/store.hpp"
#include "exec/engine.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/paths.hpp"
#include "util/strings.hpp"
#include "util/version.hpp"

namespace pim::cli {

Args::Args(int argc, char** argv, int from) {
  for (int i = from; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      std::string name = token.substr(2);
      require(!name.empty(), "cli: bare '--' is not a flag", ErrorCode::bad_input);
      const size_t eq = name.find('=');
      if (eq != std::string::npos) {
        // --flag=value binds directly, so values may begin with "--".
        require(eq > 0, "cli: '--=' is not a flag", ErrorCode::bad_input);
        flags_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "";
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::string Args::positional(size_t index, const std::string& fallback) const {
  return index < positionals_.size() ? positionals_[index] : fallback;
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value",
          ErrorCode::bad_input);
  return parse_double(it->second);
}

long Args::get_long(const std::string& flag, long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  require(!it->second.empty(), "cli: --" + flag + " needs a value",
          ErrorCode::bad_input);
  return parse_long(it->second);
}

void Args::check_known(const std::vector<std::string>& known) const {
  for (const auto& [flag, value] : flags_) {
    (void)value;
    require(std::find(known.begin(), known.end(), flag) != known.end(),
            "cli: unknown flag '--" + flag + "'", ErrorCode::bad_input);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

// Link flags shared by the per-link subcommands. Declared once so the
// commands cannot diverge in spelling or semantics.
FlagSpec length_flag() {
  return {"length", FlagType::Double, "mm", "", "wire length in mm (required)"};
}
FlagSpec style_flag() {
  return {"style", FlagType::String, "SS|DS|SH", "SS",
          "wire spacing style: single, double, shielded"};
}
FlagSpec slew_flag() {
  return {"slew", FlagType::Double, "ps", "100", "input slew"};
}
FlagSpec drive_flag() {
  return {"drive", FlagType::Int, "k", "12", "repeater drive strength"};
}
FlagSpec repeaters_flag() {
  return {"repeaters", FlagType::Int, "n", "one per mm", "repeater count"};
}
FlagSpec coeffs_flag() {
  return {"coeffs", FlagType::String, "file", "",
          "coefficient file cache (load if present, else fit and save)"};
}
FlagSpec corner_flag() {
  return {"corner", FlagType::String, "name", "nominal",
          "process corner to evaluate at (docs/corners.md)"};
}
FlagSpec corners_flag(const char* help) {
  return {"corners", FlagType::String, "all|a,b", "all", help};
}

}  // namespace

const std::vector<CommandSpec>& command_registry() {
  static const std::vector<CommandSpec> commands = {
      {"techfile", "<tech>", "dump a technology file", {}},
      {"characterize",
       "<tech>",
       "characterize the repeater library (transistor-level sims)",
       {{"drives", FlagType::String, "2,8,32", "", "drive strengths to characterize"},
        {"lib", FlagType::String, "out.lib", "stdout", "write the Liberty library here"},
        {"coeffs", FlagType::String, "out.pimfit", "",
         "also fit + calibrate and save the coefficient tables"},
        corner_flag()}},
      {"fit",
       "<tech>",
       "characterize + fit + calibrate the coefficient tables",
       {coeffs_flag(), corner_flag()}},
      {"evaluate",
       "<tech>",
       "evaluate one link under the proposed closed-form model",
       {length_flag(), style_flag(), slew_flag(), drive_flag(), repeaters_flag(),
        coeffs_flag(), corner_flag(),
        {"golden", FlagType::Switch, "", "", "also run transistor-level signoff"}}},
      {"buffer",
       "<tech>",
       "search repeater count/size minimizing delay^w * power^(1-w)",
       {length_flag(), style_flag(), slew_flag(),
        {"budget", FlagType::Double, "ps", "", "hard delay constraint"},
        {"weight", FlagType::Double, "w", "0.6", "delay emphasis in [0, 1]"},
        coeffs_flag(), corner_flag()}},
      {"noc",
       "<dvopd|vproc|mpeg4|mwd|spec.soc> <tech>",
       "constraint-driven NoC synthesis for an SoC spec",
       {{"model", FlagType::String, "m", "proposed",
         "interconnect model: proposed, bakoglu, or pamunuwa"},
        {"dot", FlagType::String, "out.dot", "", "write the topology as Graphviz"},
        {"corners", FlagType::String, "all|a,b", "",
         "size links against the worst of these corners (proposed model only)"},
        coeffs_flag()}},
      {"yield",
       "<tech>",
       "Monte-Carlo yield of one link under process variation",
       {length_flag(), style_flag(), slew_flag(),
        {"samples", FlagType::Int, "n", "1000", "Monte-Carlo corners"},
        drive_flag(), repeaters_flag(), coeffs_flag(), corner_flag()}},
      {"signoff",
       "<tech>",
       "multi-corner link signoff: per-corner slack/noise, worst corner",
       {length_flag(), style_flag(), slew_flag(), drive_flag(), repeaters_flag(),
        corners_flag("corners to sign off against"),
        {"period", FlagType::Double, "ps", "one clock period",
         "timing target the slack is measured against"},
        coeffs_flag()}},
      {"noise",
       "<tech>",
       "crosstalk glitch peak: calibrated model vs golden sim",
       {length_flag(), style_flag(), slew_flag(), drive_flag(), coeffs_flag(),
        corner_flag()}},
      {"timer",
       "<tech>",
       "NLDM table timer on the buffered link (AWE and Elmore wire)",
       {length_flag(), style_flag(), slew_flag(), drive_flag(), repeaters_flag(),
        corner_flag()}},
      {"mesh",
       "<dvopd|vproc|mpeg4|mwd|spec.soc> <tech>",
       "regular 2-D mesh NoC for an SoC spec",
       {{"rows", FlagType::Int, "r", "auto", "mesh rows"},
        {"cols", FlagType::Int, "c", "auto", "mesh columns"},
        coeffs_flag()}},
      {"export",
       "<tech>",
       "export the implemented link as a SPICE deck and/or SPEF",
       {length_flag(), style_flag(), slew_flag(), drive_flag(), repeaters_flag(),
        corner_flag(),
        {"deck", FlagType::String, "out.sp", "", "write the SPICE deck here"},
        {"spef", FlagType::String, "out.spef", "stdout", "write the SPEF here"}}},
      {"cache",
       "<stats|prune|verify|diff|invalidate> [tech]",
       "provenance-aware cache administration (docs/caching.md)",
       {{"budget-bytes", FlagType::Int, "n", "0",
         "prune: target on-disk size, entries + manifests (0 empties the cache)"}}},
      {"serve",
       "",
       "wire-protocol client: send request lines from stdin (docs/serving.md)",
       {{"socket", FlagType::String, "path", "", "connect to a pimd Unix socket"},
        {"tcp", FlagType::Int, "port", "", "connect to pimd at 127.0.0.1:<port>"},
        {"local", FlagType::Switch, "", "",
         "execute lines in-process through the same codec (no daemon)"}}},
  };
  return commands;
}

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& c : command_registry())
    if (c.name == name) return &c;
  return nullptr;
}

const std::vector<FlagSpec>& global_flag_specs() {
  static const std::vector<FlagSpec> flags = {
      {"log-level", FlagType::String, "debug|info|warn|error|off", "info",
       "stderr log threshold (beats PIM_LOG_LEVEL)"},
      {"profile", FlagType::String, "[out.json]", "",
       "collect metrics, write JSON (stdout if bare)"},
      {"trace", FlagType::String, "out.trace.json", "",
       "record a chrome://tracing timeline"},
      {"inject-fault", FlagType::String, "site[:prob[:seed]]", "",
       "arm deterministic fault injection (docs/robustness.md)"},
      {"threads", FlagType::Int, "N", "all cores",
       "worker threads; results are bit-identical at any N"},
      {"deadline-ms", FlagType::Int, "ms", "unlimited",
       "wall-clock budget; partial results exit 5 (beats PIM_DEADLINE_MS)"},
      {"cache", FlagType::String, "off|ro|rw", "rw",
       "result-cache mode (docs/caching.md; beats PIM_CACHE)"},
      {"cache-dir", FlagType::String, "dir", "~/.cache/pim",
       "result-cache directory (beats PIM_CACHE_DIR)"},
      {"out-dir", FlagType::String, "dir", "bench_out",
       "directory for report artifacts (beats PIM_OUT_DIR)"},
      {"ledger", FlagType::String, "file|off", "ledger.jsonl",
       "run-ledger file under --out-dir; 'off' disables (docs/observability.md)"},
      {"version", FlagType::Switch, "", "", "print version and build info, exit"},
      {"help", FlagType::Switch, "", "", "show this help and exit"},
  };
  return flags;
}

const std::vector<std::string>& global_flags() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const FlagSpec& f : global_flag_specs()) out.push_back(f.name);
    return out;
  }();
  return names;
}

void check_known_for(const Args& args, const CommandSpec& spec) {
  std::vector<std::string> known;
  for (const FlagSpec& f : spec.flags) known.push_back(f.name);
  check_known_with_globals(args, std::move(known));
}

void check_known_with_globals(const Args& args, std::vector<std::string> known) {
  known.insert(known.end(), global_flags().begin(), global_flags().end());
  args.check_known(known);
}

namespace {

std::string flag_stub(const FlagSpec& flag) {
  std::string out = "--" + flag.name;
  if (flag.type != FlagType::Switch) out += " " + flag.value_name;
  return out;
}

void render_flag_lines(std::ostringstream& os, const std::vector<FlagSpec>& flags) {
  size_t width = 0;
  for (const FlagSpec& f : flags) width = std::max(width, flag_stub(f).size());
  for (const FlagSpec& f : flags) {
    const std::string stub = flag_stub(f);
    os << "  " << stub << std::string(width - stub.size() + 2, ' ') << f.help;
    if (!f.default_text.empty()) os << " (default: " << f.default_text << ")";
    os << "\n";
  }
}

const char* kExitCodesLine =
    "exit codes: 0 ok, 2 usage, 3 runtime failure, 4 internal error, "
    "5 deadline/cancelled (partial results flushed)\n";

}  // namespace

std::string version_text() {
  std::ostringstream os;
  os << "pim " << kVersion << "\n";
  os << "  api-version " << api::kApiVersion << "\n";
  os << "  cache-format " << cache::kFormatVersion << "\n";
  os << "  compiler " << __VERSION__ << "\n";
  return os.str();
}

std::string usage_text() {
  std::ostringstream os;
  os << "usage: pim <command> [args]  (pim <command> --help for details)\n";
  for (const CommandSpec& c : command_registry()) {
    os << "  " << c.name;
    if (!c.positionals.empty()) os << " " << c.positionals;
    for (const FlagSpec& f : c.flags) os << " [" << flag_stub(f) << "]";
    os << "\n";
  }
  os << "global flags (any command):\n";
  render_flag_lines(os, global_flag_specs());
  os << kExitCodesLine;
  return os.str();
}

std::string help_text(const CommandSpec& spec) {
  std::ostringstream os;
  os << "usage: pim " << spec.name;
  if (!spec.positionals.empty()) os << " " << spec.positionals;
  if (!spec.flags.empty()) os << " [flags]";
  os << "\n  " << spec.summary << "\n";
  if (!spec.flags.empty()) {
    os << "flags:\n";
    render_flag_lines(os, spec.flags);
  }
  os << "global flags:\n";
  render_flag_lines(os, global_flag_specs());
  os << kExitCodesLine;
  return os.str();
}

void apply_global_flags(const Args& args) {
  if (args.has("log-level")) {
    LogLevel level;
    require(log_level_from_name(args.get("log-level"), level),
            "cli: --log-level must be debug|info|warn|error|off",
            ErrorCode::bad_input);
    set_log_level(level);
  }
  if (args.has("inject-fault")) {
    require(!args.get("inject-fault").empty(),
            "cli: --inject-fault needs a site[:prob[:seed]] spec",
            ErrorCode::bad_input);
    fault::configure(args.get("inject-fault"));
  }
  if (args.has("threads")) {
    const long n = args.get_long("threads", 0);
    require(n >= 1, "cli: --threads must be a positive integer",
            ErrorCode::bad_input);
    exec::set_threads(static_cast<int>(n));
  }
  if (args.has("cache")) {
    cache::Mode mode;
    require(cache::mode_from_name(args.get("cache"), mode),
            "cli: --cache must be off, ro, or rw", ErrorCode::bad_input);
    cache::set_mode(mode);
  }
  if (args.has("cache-dir")) {
    require(!args.get("cache-dir").empty(), "cli: --cache-dir needs a path",
            ErrorCode::bad_input);
    cache::set_dir(args.get("cache-dir"));
  }
  if (args.has("out-dir")) {
    require(!args.get("out-dir").empty(), "cli: --out-dir needs a path",
            ErrorCode::bad_input);
    set_out_dir(args.get("out-dir"));
  }
  if (args.has("deadline-ms")) {
    const long n = args.get_long("deadline-ms", 0);
    require(n >= 0, "cli: --deadline-ms must be >= 0 (0 = unlimited)",
            ErrorCode::bad_input);
  }
  if (args.has("profile")) obs::set_enabled(true);
  if (args.has("trace")) {
    require(!args.get("trace").empty(), "cli: --trace needs an output path",
            ErrorCode::bad_input);
    obs::set_enabled(true);
    obs::set_trace_enabled(true);
  }
}

int64_t resolved_deadline_ms(const Args& args) {
  if (args.has("deadline-ms")) return args.get_long("deadline-ms", 0);
  if (const char* env = std::getenv("PIM_DEADLINE_MS");
      env != nullptr && *env != '\0') {
    const long n = parse_long(env);
    require(n >= 0, "cli: PIM_DEADLINE_MS must be >= 0 (0 = unlimited)",
            ErrorCode::bad_input);
    return n;
  }
  return 0;
}

namespace {

// Relative report paths land under --out-dir / PIM_OUT_DIR when one was
// configured; explicit absolute paths and the bare default never move.
std::string report_path(const std::string& path) {
  if (path.empty() || path.front() == '/' || !out_dir_configured()) return path;
  return out_path(path);
}

}  // namespace

void write_observability_reports(const Args& args) {
  if (args.has("profile")) {
    const std::string path = report_path(args.get("profile"));
    if (path.empty()) {
      // Bare --profile: the metrics ARE the requested output, on stdout.
      obs::update_process_gauges();
      std::fputs(obs::metrics_to_json(obs::registry().snapshot()).c_str(), stdout);
    } else {
      obs::save_metrics_json(path);
      log_info("wrote ", path);
    }
  }
  if (args.has("trace")) {
    const std::string path = report_path(args.get("trace"));
    obs::save_trace(path);
    log_info("wrote ", path);
  }
}

int exit_code_for(const Error& error) {
  switch (error.code()) {
    case ErrorCode::bad_input: return 2;
    case ErrorCode::internal: return 4;
    case ErrorCode::deadline_exceeded:
    case ErrorCode::cancelled: return kExitPartial;
    default: return 3;
  }
}

void append_run_ledger(const std::string& command, const Args& args,
                       int exit_code, int64_t wall_ns) {
  try {
    std::string name = args.get("ledger", "");
    if (name == "off") return;
    if (name.empty()) {
      // PIM_LEDGER=off opts a whole environment (CI stages, test
      // harnesses) out; an explicit --ledger flag beats it.
      if (const char* env = std::getenv("PIM_LEDGER");
          env != nullptr && std::string(env) == "off" && !args.has("ledger"))
        return;
      name = "ledger.jsonl";
    }
    obs::LedgerRecord record;
    record.command = command;
    for (const auto& [flag, value] : args.flags())
      record.flags.emplace_back(flag, value);
    record.positionals = args.positionals();
    record.corners = args.get("corner", args.get("corners", ""));
    record.cache_mode = cache::mode_name(cache::mode());
    record.exit_code = exit_code;
    record.threads = exec::threads();
    record.wall_ns = wall_ns;
    const std::string path = name.front() == '/' ? name : out_path(name);
    obs::append_ledger_record(path, record);
  } catch (...) {
    // The ledger is telemetry: it must never change a run's outcome.
  }
}

}  // namespace pim::cli
