// pim — command-line front end to the library.
//
//   pim techfile <tech>                         dump a technology file
//   pim characterize <tech> [--drives 2,8,32] [--lib out.lib] [--coeffs out.pimfit]
//   pim fit <tech> [--coeffs out.pimfit]        characterize + fit + calibrate
//   pim evaluate <tech> --length <mm> [--style SS|DS|SH] [--drive k]
//                [--repeaters n] [--coeffs file] [--golden]
//   pim buffer <tech> --length <mm> [--budget <ps>] [--weight w] [--coeffs file]
//   pim noc <dvopd|vproc|spec.soc> <tech> [--model proposed|bakoglu|pamunuwa]
//           [--dot out.dot] [--coeffs file]
//   pim yield <tech> --length <mm> [--samples n] [--coeffs file]
//   pim noise <tech> --length <mm> [--drive k] [--coeffs file]
//   pim timer <tech> --length <mm> [--drive k] [--repeaters n]
//   pim mesh <dvopd|vproc|spec.soc> <tech> [--rows r] [--cols c] [--coeffs file]
//   pim export <tech> --length <mm> [--deck out.sp] [--spef out.spef]
//
// <tech> is one of 90nm 65nm 45nm 32nm 22nm 16nm. When --coeffs names an
// existing file it is loaded; otherwise the flow characterizes (slow) and
// saves there.
//
// Global flags, valid on every subcommand (see docs/observability.md):
//   --log-level debug|info|warn|error|off   stderr log threshold; beats the
//                                           PIM_LOG_LEVEL environment variable
//   --profile [out.json]                    collect metrics during the run and
//                                           write them as JSON (stdout if bare)
//   --trace out.trace.json                  record a chrome://tracing timeline
//   --inject-fault site[:prob[:seed]]       arm the deterministic fault-injection
//                                           harness (see docs/robustness.md)
//   --threads N                             worker threads for the parallel flows
//                                           (see docs/parallelism.md); beats the
//                                           PIM_THREADS environment variable
//
// Exit codes: 0 success, 2 usage/bad input, 3 runtime failure (solver,
// convergence, I/O), 4 internal error.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "buffering/optimize.hpp"
#include "charlib/coeffs_io.hpp"
#include "cosi/specfile.hpp"
#include "liberty/libertyfile.hpp"
#include "cosi/mesh.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "obs/trace.hpp"
#include "spice/deck.hpp"
#include "sta/calibrated.hpp"
#include "sta/nldm_timer.hpp"
#include "sta/noise.hpp"
#include "sta/signoff.hpp"
#include "sta/spef.hpp"
#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "cli_args.hpp"

namespace pim::cli {
namespace {

using namespace pim::unit;

int usage() {
  std::fprintf(stderr,
               "usage: pim <command> [args]\n"
               "  techfile <tech>\n"
               "  characterize <tech> [--drives 2,8,32] [--lib out.lib] [--coeffs out]\n"
               "  fit <tech> [--coeffs out.pimfit]\n"
               "  evaluate <tech> --length <mm> [--style SS|DS|SH] [--drive k]\n"
               "           [--repeaters n] [--coeffs file] [--golden]\n"
               "  buffer <tech> --length <mm> [--budget ps] [--weight w] [--coeffs file]\n"
               "  noc <dvopd|vproc|spec.soc> <tech> [--model m] [--dot out] [--coeffs file]\n"
               "  yield <tech> --length <mm> [--samples n] [--coeffs file]\n"
               "  noise <tech> --length <mm> [--drive k] [--coeffs file]\n"
               "  timer <tech> --length <mm> [--drive k] [--repeaters n]\n"
               "  mesh <dvopd|vproc|spec.soc> <tech> [--rows r] [--cols c]\n"
               "  export <tech> --length <mm> [--deck out.sp] [--spef out.spef]\n"
               "global flags (any command):\n"
               "  --log-level debug|info|warn|error|off\n"
               "  --profile [out.json]   collect metrics, write JSON (stdout if bare)\n"
               "  --trace out.trace.json record a chrome://tracing timeline\n"
               "  --inject-fault site[:prob[:seed]]  deterministic fault injection\n"
               "  --threads N            worker threads (default: all cores; same results)\n"
               "exit codes: 0 ok, 2 usage, 3 runtime failure, 4 internal error\n");
  return 2;
}

TechNode tech_arg(const Args& args, size_t index) {
  const std::string name = args.positional(index);
  require(!name.empty(), "cli: missing <tech> argument", ErrorCode::bad_input);
  return tech_node_from_name(name);
}

DesignStyle style_arg(const Args& args) {
  const std::string s = args.get("style", "SS");
  if (s == "SS") return DesignStyle::SingleSpacing;
  if (s == "DS") return DesignStyle::DoubleSpacing;
  if (s == "SH") return DesignStyle::Shielded;
  fail("cli: --style must be SS, DS, or SH", ErrorCode::bad_input);
}

TechnologyFit fit_arg(TechNode node, const Args& args) {
  obs::TraceSpan span("cli.calibrate");
  return calibrated_fit(node, args.get("coeffs", ""));
}

LinkContext context_arg(TechNode node, const Args& args) {
  LinkContext ctx;
  ctx.length = args.get_double("length", 0.0) * mm;
  require(ctx.length > 0.0, "cli: --length <mm> is required and must be positive",
          ErrorCode::bad_input);
  ctx.style = style_arg(args);
  ctx.input_slew = args.get_double("slew", 100.0) * ps;
  ctx.frequency = technology(node).clock_frequency;
  return ctx;
}

int cmd_techfile(const Args& args) {
  obs::TraceSpan span("cli.techfile");
  check_known_with_globals(args, {});
  std::fputs(write_techfile(technology(tech_arg(args, 0))).c_str(), stdout);
  return 0;
}

int cmd_characterize(const Args& args) {
  obs::TraceSpan span("cli.characterize");
  check_known_with_globals(args, {"drives", "lib", "coeffs"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  CharacterizationOptions opt;
  if (args.has("drives")) {
    opt.drives.clear();
    for (const std::string& d : split(args.get("drives"), ','))
      opt.drives.push_back(static_cast<int>(parse_long(d)));
  }
  log_info("characterizing ", tech.name, " (transistor-level simulations)...");
  const CellLibrary lib = characterize_library(tech, opt);
  if (args.has("lib")) {
    save_liberty(lib, args.get("lib"));
    log_info("wrote ", args.get("lib"));
  } else {
    std::fputs(write_liberty(lib).c_str(), stdout);
  }
  if (args.has("coeffs")) {
    const TechnologyFit fit = calibrate_composition(tech, fit_technology(tech, lib));
    save_fit(fit, args.get("coeffs"));
    log_info("wrote ", args.get("coeffs"));
  }
  return 0;
}

int cmd_fit(const Args& args) {
  obs::TraceSpan span("cli.fit");
  check_known_with_globals(args, {"coeffs"});
  const TechNode node = tech_arg(args, 0);
  const TechnologyFit fit = fit_arg(node, args);
  std::fputs(write_fit(fit).c_str(), stdout);
  return 0;
}

int cmd_evaluate(const Args& args) {
  obs::TraceSpan span("cli.evaluate");
  check_known_with_globals(args, {"length", "style", "slew", "drive", "repeaters", "coeffs", "golden"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  const LinkContext ctx = context_arg(node, args);
  LinkDesign design;
  design.drive = static_cast<int>(args.get_long("drive", 12));
  design.num_repeaters = static_cast<int>(
      args.get_long("repeaters", std::max(1L, std::lround(ctx.length / (1.0 * mm)))));

  const ProposedModel model(tech, fit_arg(node, args));
  const LinkEstimate est = model.evaluate(ctx, design);
  std::printf("link: %.2f mm %s at %s, %d x INVD%d (miller %.2f)\n",
              ctx.length / mm, design_style_name(ctx.style).c_str(), tech.name.c_str(),
              design.num_repeaters, design.drive, design.miller_factor);
  std::printf("model:  delay %.1f ps | slew %.1f ps | power %.4f mW/bit | area %.1f um2\n",
              est.delay / ps, est.output_slew / ps, est.total_power() / mW,
              est.repeater_area / um2);
  if (args.has("golden")) {
    const SignoffResult golden = signoff_link(tech, ctx, design);
    std::printf("golden: delay %.1f ps | slew %.1f ps (%zu nodes) | model err %+.1f %%\n",
                golden.delay / ps, golden.output_slew / ps, golden.node_count,
                100.0 * (est.delay - golden.delay) / golden.delay);
  }
  return 0;
}

int cmd_buffer(const Args& args) {
  obs::TraceSpan span("cli.buffer");
  check_known_with_globals(args, {"length", "style", "slew", "budget", "weight", "coeffs"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  const LinkContext ctx = context_arg(node, args);
  BufferingOptions opt;
  opt.weight = args.get_double("weight", 0.6);
  if (args.has("budget")) opt.max_delay = args.get_double("budget", 0.0) * ps;
  const ProposedModel model(tech, fit_arg(node, args));
  const BufferingResult best = optimize_buffering(model, ctx, opt);
  if (!best.feasible) {
    log_error("buffer: no buffering meets the constraints (", best.evaluations,
              " candidates)");
    return 1;
  }
  std::printf("best: %d x %sD%d (miller %.2f) after %ld candidates\n",
              best.design.num_repeaters, cell_kind_name(best.design.kind).c_str(),
              best.design.drive, best.design.miller_factor, best.evaluations);
  std::printf("estimate: delay %.1f ps | power %.4f mW/bit | area %.1f um2\n",
              best.estimate.delay / ps, best.estimate.total_power() / mW,
              best.estimate.repeater_area / um2);
  return 0;
}

int cmd_noc(const Args& args) {
  obs::TraceSpan span("cli.noc");
  check_known_with_globals(args, {"model", "dot", "coeffs"});
  const std::string which = args.positional(0);
  require(!which.empty(), "cli: noc needs a spec (dvopd, vproc, or a .soc file)",
          ErrorCode::bad_input);
  const TechNode node = tech_arg(args, 1);
  const Technology& tech = technology(node);

  SocSpec spec;
  if (which == "dvopd") {
    spec = dvopd_spec();
  } else if (which == "vproc") {
    spec = vproc_spec();
  } else if (which == "mpeg4") {
    spec = mpeg4_spec();
  } else if (which == "mwd") {
    spec = mwd_spec();
  } else {
    spec = load_soc_spec(which);
  }

  const std::string model_name = args.get("model", "proposed");
  std::unique_ptr<InterconnectModel> model;
  if (model_name == "proposed") {
    model = std::make_unique<ProposedModel>(tech, fit_arg(node, args));
  } else if (model_name == "bakoglu") {
    model = std::make_unique<BakogluModel>(tech);
  } else if (model_name == "pamunuwa") {
    model = std::make_unique<PamunuwaModel>(tech);
  } else {
    fail("cli: --model must be proposed, bakoglu, or pamunuwa", ErrorCode::bad_input);
  }

  const NocSynthesisResult r = synthesize_noc(spec, *model);
  const NocMetrics& m = r.metrics;
  std::printf("%s at %s under the %s model:\n", spec.name.c_str(), tech.name.c_str(),
              model->name().c_str());
  std::printf("  power: %.2f mW dynamic + %.2f mW leakage\n", m.dynamic_power() / mW,
              m.leakage_power() / mW);
  std::printf("  worst link delay %.0f ps (budget %.0f ps) | area %.3f mm2\n",
              m.worst_link_delay / ps, r.delay_budget / ps, m.total_area() / mm2);
  std::printf("  %d links, %d routers, hops avg %.2f max %d, %d merges\n", m.num_links,
              m.num_routers, m.avg_hops, m.max_hops, r.merges_applied);
  if (args.has("dot")) {
    std::ofstream out(args.get("dot"));
    require(out.good(), "cli: cannot open '" + args.get("dot") + "'",
            ErrorCode::io_parse);
    out << to_dot(r.architecture);
    log_info("wrote ", args.get("dot"));
  }
  return 0;
}

int cmd_yield(const Args& args) {
  obs::TraceSpan span("cli.yield");
  check_known_with_globals(args, {"length", "style", "slew", "samples", "drive", "repeaters", "coeffs"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  const LinkContext ctx = context_arg(node, args);
  LinkDesign design;
  design.drive = static_cast<int>(args.get_long("drive", 12));
  design.num_repeaters = static_cast<int>(
      args.get_long("repeaters", std::max(1L, std::lround(ctx.length / (1.0 * mm)))));
  const int samples = static_cast<int>(args.get_long("samples", 1000));

  const ProposedModel model(tech, fit_arg(node, args));
  const MonteCarloResult mc = monte_carlo_link(model, ctx, design, samples, 2026);
  std::printf("%d corners: nominal %.1f ps, mean %.1f ps, sigma %.2f ps\n", samples,
              mc.nominal_delay / ps, mc.mean_delay / ps, mc.sigma_delay / ps);
  std::printf("p90 %.1f ps | p99 %.1f ps | yield at nominal %.1f %%\n",
              mc.delay_quantile(0.9) / ps, mc.delay_quantile(0.99) / ps,
              100.0 * mc.yield_at(mc.nominal_delay));
  return 0;
}

int cmd_export(const Args& args) {
  obs::TraceSpan span("cli.export");
  check_known_with_globals(args, {"length", "style", "slew", "drive", "repeaters", "deck", "spef"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  const LinkContext ctx = context_arg(node, args);
  LinkDesign design;
  design.drive = static_cast<int>(args.get_long("drive", 12));
  design.num_repeaters = static_cast<int>(
      args.get_long("repeaters", std::max(1L, std::lround(ctx.length / (1.0 * mm)))));
  bool wrote = false;
  if (args.has("deck")) {
    const LinkNetlist net = build_link_netlist(tech, ctx, design);
    save_deck(net.circuit, args.get("deck"));
    log_info("wrote ", args.get("deck"), " (", net.circuit.node_count(), " nodes)");
    wrote = true;
  }
  if (args.has("spef")) {
    std::ofstream out(args.get("spef"));
    require(out.good(), "cli: cannot open '" + args.get("spef") + "'",
            ErrorCode::io_parse);
    out << write_spef(tech, ctx, design);
    log_info("wrote ", args.get("spef"));
    wrote = true;
  }
  if (!wrote) std::fputs(write_spef(tech, ctx, design).c_str(), stdout);
  return 0;
}

int cmd_noise(const Args& args) {
  obs::TraceSpan span("cli.noise");
  check_known_with_globals(args, {"length", "style", "slew", "drive", "coeffs"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  LinkContext ctx = context_arg(node, args);
  LinkDesign design;
  design.drive = static_cast<int>(args.get_long("drive", 12));
  design.num_repeaters = 1;  // noise is per wire segment
  const TechnologyFit fit = fit_arg(node, args);
  log_info("calibrating noise model against golden glitch sims...");
  const NoiseCalibration cal = calibrate_noise(tech, fit);
  const double golden = golden_noise_peak(tech, ctx, design);
  const double model = noise_peak_model(tech, fit, ctx, design, cal.kappa_n);
  std::printf("%.2f mm %s segment, INVD%d holder at %s:\n", ctx.length / mm,
              design_style_name(ctx.style).c_str(), design.drive, tech.name.c_str());
  std::printf("  golden glitch %.1f mV (%.1f %% of vdd), model %.1f mV (%+.1f %%)\n",
              golden * 1e3, 100 * golden / tech.vdd, model * 1e3,
              100 * (model - golden) / std::max(golden, 1e-9));
  return 0;
}

int cmd_timer(const Args& args) {
  obs::TraceSpan span("cli.timer");
  check_known_with_globals(args, {"length", "style", "slew", "drive", "repeaters"});
  const TechNode node = tech_arg(args, 0);
  const Technology& tech = technology(node);
  const LinkContext ctx = context_arg(node, args);
  LinkDesign design;
  design.drive = static_cast<int>(args.get_long("drive", 12));
  design.num_repeaters = static_cast<int>(
      args.get_long("repeaters", std::max(1L, std::lround(ctx.length / (1.0 * mm)))));
  CharacterizationOptions copt;
  copt.drives = {design.drive};
  copt.buffers = design.kind == CellKind::Buffer;
  copt.inverters = design.kind == CellKind::Inverter;
  log_info("characterizing ", cell_kind_name(design.kind), "D", design.drive,
           " tables...");
  const CellLibrary lib = characterize_library(tech, copt);
  const NldmTimerResult awe = nldm_link_delay(lib, tech, ctx, design);
  NldmTimerOptions elm;
  elm.wire = WireDelayMethod::Elmore;
  const NldmTimerResult elmore = nldm_link_delay(lib, tech, ctx, design, elm);
  std::printf("NLDM timer, %.2f mm x %d INVD%d at %s:\n", ctx.length / mm,
              design.num_repeaters, design.drive, tech.name.c_str());
  std::printf("  awe-wire delay %.1f ps (slew %.1f ps) | elmore-wire delay %.1f ps\n",
              awe.delay / ps, awe.output_slew / ps, elmore.delay / ps);
  return 0;
}

int cmd_mesh(const Args& args) {
  obs::TraceSpan span("cli.mesh");
  check_known_with_globals(args, {"rows", "cols", "coeffs"});
  const std::string which = args.positional(0);
  require(!which.empty(), "cli: mesh needs a spec (dvopd, vproc, or a .soc file)",
          ErrorCode::bad_input);
  const TechNode node = tech_arg(args, 1);
  const Technology& tech = technology(node);
  SocSpec spec;
  if (which == "dvopd") {
    spec = dvopd_spec();
  } else if (which == "vproc") {
    spec = vproc_spec();
  } else if (which == "mpeg4") {
    spec = mpeg4_spec();
  } else if (which == "mwd") {
    spec = mwd_spec();
  } else {
    spec = load_soc_spec(which);
  }
  const ProposedModel model(tech, fit_arg(node, args));
  MeshOptions shape;
  shape.rows = static_cast<int>(args.get_long("rows", 0));
  shape.cols = static_cast<int>(args.get_long("cols", 0));
  const NocSynthesisResult r = build_mesh_noc(spec, model, {}, shape);
  const NocMetrics& m = r.metrics;
  std::printf("%s mesh at %s: %d routers, %d links\n", spec.name.c_str(),
              tech.name.c_str(), m.num_routers, m.num_links);
  std::printf("  power %.2f mW dyn + %.2f mW leak | area %.3f mm2 | hops %.2f avg %d max\n",
              m.dynamic_power() / mW, m.leakage_power() / mW, m.total_area() / mm2,
              m.avg_hops, m.max_hops);
  return 0;
}

int run_command(const std::string& command, const Args& args) {
  if (command == "techfile") return cmd_techfile(args);
  if (command == "characterize") return cmd_characterize(args);
  if (command == "fit") return cmd_fit(args);
  if (command == "evaluate") return cmd_evaluate(args);
  if (command == "buffer") return cmd_buffer(args);
  if (command == "noc") return cmd_noc(args);
  if (command == "yield") return cmd_yield(args);
  if (command == "noise") return cmd_noise(args);
  if (command == "timer") return cmd_timer(args);
  if (command == "mesh") return cmd_mesh(args);
  if (command == "export") return cmd_export(args);
  log_error("unknown command '", command, "'");
  return usage();
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  fault::configure_from_env();  // PIM_FAULT; --inject-fault below beats it
  apply_global_flags(args);
  // Reports are written even when the command throws, so an aborted run
  // still leaves its metrics/trace behind for post-mortem.
  try {
    const int rc = run_command(command, args);
    write_observability_reports(args);
    return rc;
  } catch (...) {
    try {
      write_observability_reports(args);
    } catch (const pim::Error& e) {
      // Flushing must not mask the original failure.
      log_error("while writing reports: ", e.what());
    }
    throw;
  }
}

}  // namespace
}  // namespace pim::cli

int main(int argc, char** argv) {
  // Default to Info chatter for interactive use, unless PIM_LOG_LEVEL or
  // --log-level (applied later) says otherwise.
  if (!pim::log_level_env_override()) pim::set_log_level(pim::LogLevel::Info);
  // Exit codes: 2 = the caller passed bad arguments (usage), 3 = the run
  // itself failed (solver, convergence, file I/O), 4 = a bug (internal
  // invariant or an exception that is not a pim::Error).
  try {
    return pim::cli::dispatch(argc, argv);
  } catch (const pim::Error& e) {
    pim::log_error(e.what());
    return e.code() == pim::ErrorCode::bad_input ? 2
           : e.code() == pim::ErrorCode::internal ? 4
                                                  : 3;
  } catch (const std::exception& e) {
    pim::log_error("internal error: ", e.what());
    return 4;
  } catch (...) {
    pim::log_error("internal error: unknown exception");
    return 4;
  }
}
