// pim — command-line front end to the library.
//
// Thin by design: every subcommand parses flags via the declarative
// registry in cli_args.cpp, builds a pim::api request, runs it through
// the stable facade (src/api/pim_api.hpp), and prints the result. The
// CLI touches no internal headers, so it only breaks when the facade's
// versioned contract does. `pim --help` / `pim <command> --help` render
// the registry; see docs/cli.md for a tour.
//
// Exit codes: 0 success, 2 usage/bad input, 3 runtime failure (solver,
// convergence, I/O), 4 internal error, 5 deadline exceeded / cancelled
// (reports, traces, and the ledger record are still flushed; commands
// with a sound partial semantics print the truncated result first).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "api/pim_api.hpp"
#include "api/wire.hpp"
#include "obs/report.hpp"
#include "deadline/deadline.hpp"
#include "obs/trace.hpp"
#include "util/paths.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include "cli_args.hpp"

namespace pim::cli {
namespace {

int usage() {
  std::fputs(usage_text().c_str(), stderr);
  return 2;
}

// A command whose api call came back with partial = true already printed
// its (truncated but valid) result; it exits 5 through the normal finish
// path so the ledger records the deadline outcome.
int partial_exit(const char* command) {
  log_warn(command, ": stopped early (deadline/cancel); result covers the "
           "completed work only");
  return kExitPartial;
}

std::string tech_arg(const Args& args, size_t index) {
  const std::string name = args.positional(index);
  require(!name.empty(), "cli: missing <tech> argument", ErrorCode::bad_input);
  return name;
}

api::LinkSpec link_arg(const Args& args) {
  api::LinkSpec link;
  link.tech = tech_arg(args, 0);
  link.length_mm = args.get_double("length", 0.0);
  require(link.length_mm > 0.0, "cli: --length <mm> is required and must be positive",
          ErrorCode::bad_input);
  link.style = args.get("style", "SS");
  link.input_slew_ps = args.get_double("slew", 100.0);
  link.drive = static_cast<int>(args.get_long("drive", 12));
  link.repeaters = static_cast<int>(args.get_long("repeaters", 0));
  link.coeffs_path = args.get("coeffs", "");
  link.corner = args.get("corner", "");
  return link;
}

void save_text(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  require(out.good() && !fault::should_fire(fault::kIoOpen),
          "cli: cannot open '" + path + "'", ErrorCode::io_parse);
  out << text;
  require(out.good(), "cli: failed writing '" + path + "'", ErrorCode::io_parse);
}

int cmd_techfile(const Args& args) {
  obs::TraceSpan span("cli.techfile");
  api::TechfileRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.tech = tech_arg(args, 0);
  std::fputs(api::run_techfile(req).take().text.c_str(), stdout);
  return 0;
}

int cmd_characterize(const Args& args) {
  obs::TraceSpan span("cli.characterize");
  api::CharlibRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.tech = tech_arg(args, 0);
  if (args.has("drives"))
    for (const std::string& d : split(args.get("drives"), ','))
      req.drives.push_back(static_cast<int>(parse_long(d)));
  req.want_fit = args.has("coeffs");
  req.corner = args.get("corner", "");
  log_info("characterizing ", req.tech, " (transistor-level simulations)...");
  const api::CharlibResult r = api::run_charlib(req).take();
  if (args.has("lib")) {
    save_text(r.liberty_text, args.get("lib"));
    log_info("wrote ", args.get("lib"));
  } else {
    std::fputs(r.liberty_text.c_str(), stdout);
  }
  if (args.has("coeffs")) {
    save_text(r.fit_text, args.get("coeffs"));
    log_info("wrote ", args.get("coeffs"));
  }
  if (r.partial) return partial_exit("characterize");
  return 0;
}

int cmd_fit(const Args& args) {
  obs::TraceSpan span("cli.fit");
  api::FitRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.tech = tech_arg(args, 0);
  req.coeffs_path = args.get("coeffs", "");
  req.corner = args.get("corner", "");
  std::fputs(api::run_fit(req).take().fit_text.c_str(), stdout);
  return 0;
}

int cmd_evaluate(const Args& args) {
  obs::TraceSpan span("cli.evaluate");
  api::LinkEvalRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  req.golden = args.has("golden");
  const api::LinkEvalResult r = api::run_evaluate(req).take();
  std::printf("link: %.2f mm %s at %s, %d x INVD%d (miller %.2f)\n",
              req.link.length_mm, r.style_name.c_str(), r.tech_name.c_str(),
              r.repeaters, req.link.drive, r.miller_factor);
  std::printf("model:  delay %.1f ps | slew %.1f ps | power %.4f mW/bit | area %.1f um2\n",
              r.delay_ps, r.output_slew_ps, r.power_mw, r.area_um2);
  if (r.has_golden) {
    std::printf("golden: delay %.1f ps | slew %.1f ps (%zu nodes) | model err %+.1f %%\n",
                r.golden_delay_ps, r.golden_slew_ps,
                static_cast<size_t>(r.golden_nodes), r.model_error_pct);
  }
  return 0;
}

int cmd_buffer(const Args& args) {
  obs::TraceSpan span("cli.buffer");
  api::BufferRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  req.weight = args.get_double("weight", 0.6);
  req.budget_ps = args.get_double("budget", 0.0);
  const api::BufferResult r = api::run_buffer(req).take();
  if (!r.feasible) {
    log_error("buffer: no buffering meets the constraints (", r.evaluations,
              " candidates)");
    return 1;
  }
  std::printf("best: %d x %sD%d (miller %.2f) after %ld candidates\n", r.repeaters,
              r.kind.c_str(), r.drive, r.miller_factor, r.evaluations);
  std::printf("estimate: delay %.1f ps | power %.4f mW/bit | area %.1f um2\n",
              r.delay_ps, r.power_mw, r.area_um2);
  return 0;
}

int cmd_noc(const Args& args) {
  obs::TraceSpan span("cli.noc");
  api::SynthesisRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.spec = args.positional(0);
  require(!req.spec.empty(), "cli: noc needs a spec (dvopd, vproc, or a .soc file)",
          ErrorCode::bad_input);
  req.tech = tech_arg(args, 1);
  req.model = args.get("model", "proposed");
  req.want_dot = args.has("dot");
  req.coeffs_path = args.get("coeffs", "");
  req.corners = args.get("corners", "");
  const api::SynthesisResult r = api::run_synthesis(req).take();
  std::printf("%s at %s under the %s model:\n", r.spec_name.c_str(),
              r.tech_name.c_str(), r.model_name.c_str());
  std::printf("  power: %.2f mW dynamic + %.2f mW leakage\n", r.dynamic_power_mw,
              r.leakage_power_mw);
  std::printf("  worst link delay %.0f ps (budget %.0f ps) | area %.3f mm2\n",
              r.worst_link_delay_ps, r.delay_budget_ps, r.area_mm2);
  std::printf("  %d links, %d routers, hops avg %.2f max %d, %d merges\n", r.num_links,
              r.num_routers, r.avg_hops, r.max_hops, r.merges_applied);
  if (args.has("dot")) {
    save_text(r.dot_text, args.get("dot"));
    log_info("wrote ", args.get("dot"));
  }
  if (r.partial) return partial_exit("noc");
  return 0;
}

int cmd_yield(const Args& args) {
  obs::TraceSpan span("cli.yield");
  api::YieldRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  req.samples = static_cast<int>(args.get_long("samples", 1000));
  const api::YieldResult r = api::run_yield(req).take();
  std::printf("%d corners: nominal %.1f ps, mean %.1f ps, sigma %.2f ps\n",
              r.samples, r.nominal_delay_ps, r.mean_delay_ps, r.sigma_delay_ps);
  std::printf("p90 %.1f ps | p99 %.1f ps | yield at nominal %.1f %% (ci95 +/- %.1f %%)\n",
              r.p90_delay_ps, r.p99_delay_ps, 100.0 * r.yield_at_nominal,
              100.0 * r.yield_ci95);
  if (r.partial) {
    std::printf("partial=true: %d of %d requested samples completed before the stop\n",
                r.samples + r.failed_samples, r.requested_samples);
    return partial_exit("yield");
  }
  return 0;
}

int cmd_signoff(const Args& args) {
  obs::TraceSpan span("cli.signoff");
  api::CornersRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  req.corners = args.get("corners", "all");
  req.target_period_ps = args.get_double("period", 0.0);
  log_info("signing off across corners (per-corner characterization)...");
  const api::CornersResult r = api::run_corners(req).take();
  std::printf("%.2f mm %s link at %s, %d repeaters, target %.1f ps:\n",
              req.link.length_mm, r.style_name.c_str(), r.tech_name.c_str(),
              r.repeaters, r.target_period_ps);
  std::printf("  %-10s %10s %10s %10s %10s\n", "corner", "delay ps", "slew ps",
              "slack ps", "noise mV");
  for (const api::CornerTimingRow& row : r.corners) {
    std::printf("  %-10s %10.1f %10.1f %10.1f %10.1f\n", row.corner.c_str(),
                row.delay_ps, row.output_slew_ps, row.slack_ps, row.noise_peak_mv);
  }
  std::printf("worst corner %s, slack %.1f ps\n", r.worst_corner.c_str(),
              r.worst_slack_ps);
  return 0;
}

int cmd_export(const Args& args) {
  obs::TraceSpan span("cli.export");
  api::ExportRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  req.want_deck = args.has("deck");
  req.want_spef = args.has("spef");
  const api::ExportResult r = api::run_export(req).take();
  bool wrote = false;
  if (args.has("deck")) {
    save_text(r.deck_text, args.get("deck"));
    log_info("wrote ", args.get("deck"), " (", r.deck_nodes, " nodes)");
    wrote = true;
  }
  if (args.has("spef")) {
    save_text(r.spef_text, args.get("spef"));
    log_info("wrote ", args.get("spef"));
    wrote = true;
  }
  if (!wrote) std::fputs(r.spef_text.c_str(), stdout);
  return 0;
}

int cmd_noise(const Args& args) {
  obs::TraceSpan span("cli.noise");
  api::NoiseRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  log_info("calibrating noise model against golden glitch sims...");
  const api::NoiseResult r = api::run_noise(req).take();
  std::printf("%.2f mm %s segment, INVD%d holder at %s:\n", req.link.length_mm,
              r.style_name.c_str(), req.link.drive, r.tech_name.c_str());
  std::printf("  golden glitch %.1f mV (%.1f %% of vdd), model %.1f mV (%+.1f %%)\n",
              r.golden_peak_mv, r.golden_peak_pct_vdd, r.model_peak_mv,
              r.model_error_pct);
  return 0;
}

int cmd_timer(const Args& args) {
  obs::TraceSpan span("cli.timer");
  api::TimerRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.link = link_arg(args);
  log_info("characterizing INVD", req.link.drive, " tables...");
  const api::TimerResult r = api::run_timer(req).take();
  std::printf("NLDM timer, %.2f mm x %d INVD%d at %s:\n", req.link.length_mm,
              r.repeaters, req.link.drive, r.tech_name.c_str());
  std::printf("  awe-wire delay %.1f ps (slew %.1f ps) | elmore-wire delay %.1f ps\n",
              r.awe_delay_ps, r.awe_slew_ps, r.elmore_delay_ps);
  if (r.partial) return partial_exit("timer");
  return 0;
}

int cmd_mesh(const Args& args) {
  obs::TraceSpan span("cli.mesh");
  api::SynthesisRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.spec = args.positional(0);
  require(!req.spec.empty(), "cli: mesh needs a spec (dvopd, vproc, or a .soc file)",
          ErrorCode::bad_input);
  req.tech = tech_arg(args, 1);
  req.mesh = true;
  req.rows = static_cast<int>(args.get_long("rows", 0));
  req.cols = static_cast<int>(args.get_long("cols", 0));
  req.coeffs_path = args.get("coeffs", "");
  const api::SynthesisResult r = api::run_synthesis(req).take();
  std::printf("%s mesh at %s: %d routers, %d links\n", r.spec_name.c_str(),
              r.tech_name.c_str(), r.num_routers, r.num_links);
  std::printf("  power %.2f mW dyn + %.2f mW leak | area %.3f mm2 | hops %.2f avg %d max\n",
              r.dynamic_power_mw, r.leakage_power_mw, r.area_mm2, r.avg_hops,
              r.max_hops);
  if (r.partial) return partial_exit("mesh");
  return 0;
}

int cmd_cache(const Args& args) {
  obs::TraceSpan span("cli.cache");
  const std::string action = args.positional(0);
  require(!action.empty(),
          "cli: cache needs an action (stats, prune, verify, diff, invalidate)",
          ErrorCode::bad_input);
  if (action == "diff" || action == "invalidate") {
    api::InvalidateRequest req;
    req.deadline_ms = resolved_deadline_ms(args);
    req.tech = tech_arg(args, 1);
    req.apply = action == "invalidate";
    const api::InvalidateResult r = api::run_invalidate(req).take();
    std::printf("%d manifests against %s: %d dirty, %d reusable\n", r.manifests,
                req.tech.c_str(), r.dirty_keys, r.reuse_keys);
    for (const api::InvalidateKindRow& row : r.kinds)
      std::printf("  %-12s %6d dirty %6d reuse\n", row.kind.c_str(), row.dirty,
                  row.reuse);
    if (r.applied)
      std::printf("evicted %d stale entries\n", r.evicted);
    else if (r.dirty_keys > 0)
      std::printf("(dry run; `pim cache invalidate` evicts the dirty cone)\n");
    return 0;
  }
  api::CacheAdminRequest req;
  req.deadline_ms = resolved_deadline_ms(args);
  req.action = action;
  req.budget_bytes = args.get_long("budget-bytes", 0);
  const api::CacheAdminResult r = api::run_cache_admin(req).take();
  if (action == "stats") {
    std::printf("cache at %s:\n", r.dir.c_str());
    std::printf("  %-12s %8s %14s %14s\n", "kind", "entries", "payload B",
                "manifest B");
    for (const api::CacheKindRow& row : r.kinds)
      std::printf("  %-12s %8lld %14lld %14lld\n", row.kind.c_str(),
                  static_cast<long long>(row.entries),
                  static_cast<long long>(row.payload_bytes),
                  static_cast<long long>(row.manifest_bytes));
    std::printf("total %lld bytes\n", static_cast<long long>(r.total_bytes));
  } else if (action == "prune") {
    std::printf("pruned %s to %lld bytes: removed %lld of %lld entries (%lld bytes)\n",
                r.dir.c_str(), static_cast<long long>(r.kept_bytes),
                static_cast<long long>(r.removed_entries),
                static_cast<long long>(r.scanned_entries),
                static_cast<long long>(r.removed_bytes));
  } else {  // verify (run_cache_admin rejects anything else)
    std::printf("verified %s: %lld entries, %lld manifests\n", r.dir.c_str(),
                static_cast<long long>(r.entries),
                static_cast<long long>(r.manifests));
    std::printf("  orphan manifests %lld | unmanifested entries %lld | corrupt %lld "
                "| scrubbed %lld\n",
                static_cast<long long>(r.orphan_manifests),
                static_cast<long long>(r.unmanifested_entries),
                static_cast<long long>(r.corrupt_manifests),
                static_cast<long long>(r.scrubbed));
    if (r.scrubbed > 0) return 1;
  }
  return 0;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path), "serve: socket path too long: " + path,
          ErrorCode::bad_input);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_UNIX) failed", ErrorCode::io_parse);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("serve: cannot connect to " + path + ": " + std::strerror(errno),
         ErrorCode::io_parse);
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_INET) failed", ErrorCode::io_parse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("serve: cannot connect to 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno),
         ErrorCode::io_parse);
  }
  return fd;
}

// The worst exit code any response in the session carried (the daemon
// embeds exit_code in every error envelope — one contract across both
// surfaces, docs/api.md). Unparseable responses count as internal.
void fold_response_exit(const std::string& response, int& exit_code) {
  try {
    const obs::JsonValue v = obs::parse_json(response);
    const obs::JsonValue* ok = v.find("ok");
    if (ok == nullptr || ok->kind != obs::JsonValue::Kind::Bool || ok->boolean)
      return;
    if (const obs::JsonValue* error = v.find("error");
        error != nullptr && error->kind == obs::JsonValue::Kind::Object) {
      if (const obs::JsonValue* ec = error->find("exit_code");
          ec != nullptr && ec->kind == obs::JsonValue::Kind::Number) {
        exit_code = std::max(exit_code, static_cast<int>(ec->number));
        return;
      }
    }
    exit_code = std::max(exit_code, 3);
  } catch (...) {
    exit_code = std::max(exit_code, 4);
  }
}

// `pim serve` — the wire-protocol client (docs/serving.md). Reads one
// request line per stdin line, obtains one response line (from a daemon
// over --socket/--tcp, or in-process with --local through the exact
// function the daemon workers run), prints it, and exits with the worst
// exit_code any response carried.
int cmd_serve(const Args& args) {
  obs::TraceSpan span("cli.serve");
  const bool local = args.has("local");
  const std::string socket_path = args.get("socket", "");
  const int tcp_port = static_cast<int>(args.get_long("tcp", -1));
  require(local || !socket_path.empty() || tcp_port >= 0,
          "serve: need --local, --socket <path>, or --tcp <port>",
          ErrorCode::bad_input);
  require(!local || (socket_path.empty() && tcp_port < 0),
          "serve: --local excludes --socket/--tcp", ErrorCode::bad_input);
  int exit_code = 0;
  std::string line;
  if (local) {
    while (std::getline(std::cin, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = api::wire::execute_line(line);
      std::fputs(response.c_str(), stdout);
      std::fputc('\n', stdout);
      fold_response_exit(response, exit_code);
    }
    return exit_code;
  }
  const int fd = socket_path.empty() ? connect_tcp(tcp_port) : connect_unix(socket_path);
  std::string buffer;
  char chunk[65536];
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    line += '\n';
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        ::close(fd);
        fail("serve: connection lost while sending", ErrorCode::io_parse);
      }
      off += static_cast<size_t>(n);
    }
    // Lock-step: one response line per request line, so a large session
    // cannot deadlock on full socket buffers in both directions.
    size_t pos;
    while ((pos = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        fail("serve: connection closed before a response arrived",
             ErrorCode::io_parse);
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    const std::string response = buffer.substr(0, pos);
    buffer.erase(0, pos + 1);
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
    fold_response_exit(response, exit_code);
  }
  ::close(fd);
  return exit_code;
}

int run_command(const CommandSpec& spec, const Args& args) {
  if (spec.name == "techfile") return cmd_techfile(args);
  if (spec.name == "characterize") return cmd_characterize(args);
  if (spec.name == "fit") return cmd_fit(args);
  if (spec.name == "evaluate") return cmd_evaluate(args);
  if (spec.name == "buffer") return cmd_buffer(args);
  if (spec.name == "noc") return cmd_noc(args);
  if (spec.name == "yield") return cmd_yield(args);
  if (spec.name == "signoff") return cmd_signoff(args);
  if (spec.name == "noise") return cmd_noise(args);
  if (spec.name == "timer") return cmd_timer(args);
  if (spec.name == "mesh") return cmd_mesh(args);
  if (spec.name == "export") return cmd_export(args);
  if (spec.name == "cache") return cmd_cache(args);
  if (spec.name == "serve") return cmd_serve(args);
  fail("cli: command '" + spec.name + "' is registered but not dispatched");
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    std::fputs(usage_text().c_str(), stdout);
    return 0;
  }
  if (command == "--version" || command == "version") {
    std::fputs(version_text().c_str(), stdout);
    return 0;
  }
  const CommandSpec* spec = find_command(command);
  if (spec == nullptr) {
    log_error("unknown command '", command, "'");
    return usage();
  }
  const Args args(argc, argv, 2);
  if (args.has("help")) {
    std::fputs(help_text(*spec).c_str(), stdout);
    return 0;
  }
  if (args.has("version")) {
    std::fputs(version_text().c_str(), stdout);
    return 0;
  }
  // Reports (--profile/--trace) and the run ledger flush on EVERY exit
  // path — flag errors included — so an aborted run still leaves its
  // metrics, trace, and a ledger record carrying its exit code. The
  // output directory applies before any flag validation can throw, so
  // even exit-2 artifacts land where the user pointed them.
  if (!args.get("out-dir").empty()) pim::set_out_dir(args.get("out-dir"));
  const int64_t start_ns = obs::now_ns();
  const auto finish = [&](int exit_code) {
    write_observability_reports(args);
    append_run_ledger(command, args, exit_code, obs::now_ns() - start_ns);
  };
  try {
    check_known_for(args, *spec);
    fault::configure_from_env();  // PIM_FAULT; --inject-fault below beats it
    apply_global_flags(args);
    const int rc = run_command(*spec, args);
    finish(rc);
    return rc;
  } catch (const pim::Error& e) {
    try {
      finish(exit_code_for(e));
    } catch (const pim::Error& flush) {
      // Flushing must not mask the original failure.
      log_error("while writing reports: ", flush.what());
    }
    throw;
  } catch (...) {
    try {
      finish(4);
    } catch (const pim::Error& flush) {
      log_error("while writing reports: ", flush.what());
    }
    throw;
  }
}

}  // namespace
}  // namespace pim::cli

int main(int argc, char** argv) {
  // Default to Info chatter for interactive use, unless PIM_LOG_LEVEL or
  // --log-level (applied later) says otherwise.
  if (!pim::log_level_env_override()) pim::set_log_level(pim::LogLevel::Info);
  // SIGINT/SIGTERM trip the cooperative cancel token: the run stops at
  // the next chunk boundary and exits through the normal finish path
  // (reports + ledger flushed, exit 5). A second signal kills outright.
  pim::deadline::install_signal_handlers();
  // Exit codes: 2 = the caller passed bad arguments (usage), 3 = the run
  // itself failed (solver, convergence, file I/O), 4 = a bug (internal
  // invariant or an exception that is not a pim::Error).
  try {
    return pim::cli::dispatch(argc, argv);
  } catch (const pim::Error& e) {
    pim::log_error(e.what());
    return pim::cli::exit_code_for(e);
  } catch (const std::exception& e) {
    pim::log_error("internal error: ", e.what());
    return 4;
  } catch (...) {
    pim::log_error("internal error: unknown exception");
    return 4;
  }
}
