// Minimal command-line argument parser for the pim CLI: positionals plus
// `--flag value` / `--switch` options, with typed accessors and an
// unknown-flag check.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pim::cli {

class Args {
 public:
  /// Parses argv[from..); flags start with "--". A flag followed by a
  /// non-flag token consumes it as its value; otherwise it is a switch.
  Args(int argc, char** argv, int from);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Positional at index or `fallback` when absent.
  std::string positional(size_t index, const std::string& fallback = "") const;

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback = "") const;
  double get_double(const std::string& flag, double fallback) const;
  long get_long(const std::string& flag, long fallback) const;

  /// Throws pim::Error if any parsed flag is not in `known`.
  void check_known(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;  // switch -> ""
};

/// Flags every pim subcommand accepts:
///   --log-level debug|info|warn|error|off   log threshold (beats PIM_LOG_LEVEL)
///   --profile [out.json]                    collect metrics; write JSON to the
///                                           path, or to stdout when bare
///   --trace out.trace.json                  collect a Chrome-trace of the run
///   --inject-fault site[:prob[:seed]][,...] arm the deterministic fault-
///                                           injection harness (see
///                                           docs/robustness.md); beats PIM_FAULT
///   --threads N                             worker threads for parallel flows
///                                           (docs/parallelism.md); beats
///                                           PIM_THREADS; results are
///                                           bit-identical at any N
const std::vector<std::string>& global_flags();

/// check_known with the global flags appended to `known`.
void check_known_with_globals(const Args& args, std::vector<std::string> known);

/// Applies the global flags' side effects: sets the log threshold and
/// enables metric/trace collection. Call once before dispatching.
void apply_global_flags(const Args& args);

/// Writes the --profile / --trace artifacts. Call after the command ran
/// (also on failure, so partial runs still leave telemetry behind).
void write_observability_reports(const Args& args);

}  // namespace pim::cli
