// Minimal command-line argument parser for the pim CLI: positionals plus
// `--flag value` / `--switch` options, with typed accessors and an
// unknown-flag check.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pim::cli {

class Args {
 public:
  /// Parses argv[from..); flags start with "--". A flag followed by a
  /// non-flag token consumes it as its value; otherwise it is a switch.
  Args(int argc, char** argv, int from);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Positional at index or `fallback` when absent.
  std::string positional(size_t index, const std::string& fallback = "") const;

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback = "") const;
  double get_double(const std::string& flag, double fallback) const;
  long get_long(const std::string& flag, long fallback) const;

  /// Throws pim::Error if any parsed flag is not in `known`.
  void check_known(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;  // switch -> ""
};

}  // namespace pim::cli
