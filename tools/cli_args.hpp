// Command-line argument handling for the pim CLI: a small parser for
// positionals plus `--flag value` / `--flag=value` / `--switch` options,
// and a declarative registry of every subcommand and flag the binary
// accepts. usage() and the per-subcommand --help screens are generated
// from the registry, so the documentation cannot drift from the parser.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace pim::cli {

class Args {
 public:
  /// Parses argv[from..); flags start with "--". `--flag=value` binds
  /// directly; otherwise a flag followed by a non-flag token consumes it
  /// as its value, and a flag followed by another flag is a switch.
  Args(int argc, char** argv, int from);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Positional at index or `fallback` when absent.
  std::string positional(size_t index, const std::string& fallback = "") const;

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback = "") const;
  double get_double(const std::string& flag, double fallback) const;
  long get_long(const std::string& flag, long fallback) const;

  /// Throws pim::Error if any parsed flag is not in `known`.
  void check_known(const std::vector<std::string>& known) const;

  /// Every parsed flag as name -> value (switches map to ""), in name
  /// order. The run ledger records these as the resolved flag set.
  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;  // switch -> ""
};

// ---------------------------------------------------------------------------
// Declarative flag / command registry
// ---------------------------------------------------------------------------

/// How a flag's value is parsed (drives help rendering only; commands
/// read values through the typed Args getters).
enum class FlagType { Switch, String, Int, Double };

/// One `--flag` a subcommand (or every subcommand) accepts.
struct FlagSpec {
  std::string name;        ///< without the leading "--"
  FlagType type = FlagType::String;
  std::string value_name;  ///< e.g. "mm", "n", "out.json"; "" for switches
  std::string default_text;  ///< rendered in help; "" = no default shown
  std::string help;        ///< one-line description
};

/// One pim subcommand: its positional signature, summary, and flags.
struct CommandSpec {
  std::string name;
  std::string positionals;  ///< e.g. "<tech>" or "<spec> <tech>"
  std::string summary;
  std::vector<FlagSpec> flags;
};

/// Every subcommand the binary accepts, in help order.
const std::vector<CommandSpec>& command_registry();

/// The spec for `name`, or nullptr for an unknown command.
const CommandSpec* find_command(const std::string& name);

/// Flags valid on every subcommand (observability, cache, output dir).
const std::vector<FlagSpec>& global_flag_specs();

/// Names of the global flags (see global_flag_specs).
const std::vector<std::string>& global_flags();

/// check_known against a command's registered flags plus the globals.
void check_known_for(const Args& args, const CommandSpec& spec);

/// check_known with the global flags appended to `known`.
void check_known_with_globals(const Args& args, std::vector<std::string> known);

/// The `pim --version` text: semver, api/cache format versions, compiler.
std::string version_text();

/// The one-screen usage text, generated from the registry.
std::string usage_text();

/// The per-subcommand help screen (`pim <command> --help`).
std::string help_text(const CommandSpec& spec);

/// Applies the global flags' side effects: log threshold, fault
/// injection, thread count, metric/trace collection, cache mode and
/// directory, output directory. Call once before dispatching.
void apply_global_flags(const Args& args);

/// The wall-clock budget for this run in milliseconds: `--deadline-ms`
/// beats PIM_DEADLINE_MS; 0 (the default) means unlimited. Commands copy
/// this into their api request's `deadline_ms` field.
int64_t resolved_deadline_ms(const Args& args);

/// Writes the --profile / --trace artifacts. Call after the command ran
/// (also on failure, so partial runs still leave telemetry behind).
/// Relative report paths resolve under pim::out_dir() when --out-dir or
/// PIM_OUT_DIR configured one.
void write_observability_reports(const Args& args);

/// Maps the error taxonomy to the CLI exit-code contract: bad_input -> 2,
/// internal -> 4, deadline_exceeded/cancelled -> 5, everything else -> 3.
int exit_code_for(const Error& error);

/// The exit code for a run that finished with a graceful partial result
/// (result.partial == true) instead of a typed stop error.
inline constexpr int kExitPartial = 5;

/// Appends one run-ledger record (docs/observability.md) for `command`
/// to the ledger file: `--ledger <file>` names it ("" / bare uses
/// ledger.jsonl), relative names land under pim::out_dir(). `--ledger
/// off` (or PIM_LEDGER=off without the flag) suppresses the record.
/// Best-effort: never throws.
void append_run_ledger(const std::string& command, const Args& args,
                       int exit_code, int64_t wall_ns);

}  // namespace pim::cli
