// EXTENSION bench — "sizing for yield improvement under process
// variation": the task metadata's (mislabeled) title names exactly this
// experiment, so we run it as a bonus on top of the variation extension:
// how does repeater upsizing trade nominal power for parametric timing
// yield at a fixed clock budget?
//
// A 5 mm worst-case-coupled link at 65 nm must close at a fixed budget.
// For each drive size: nominal delay, Monte-Carlo sigma, yield at the
// budget, and power. Upsizing buys yield (faster and relatively less
// variable) at a power cost — until the wire dominates and yield
// saturates: the classic sizing-for-yield curve.
#include <algorithm>
#include <cstdio>

#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("sizing_for_yield");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);
  LinkContext ctx = pim::bench::link_context(tech, 5.0);

  const std::vector<int> drives = {6, 8, 12, 16, 24, 32, 48, 64};
  const int repeaters = 5;
  const int samples = 1500;

  // Fix the budget from a mid-size design plus a thin margin, so the
  // sweep spans the whole yield range.
  LinkDesign mid;
  mid.drive = 16;
  mid.num_repeaters = repeaters;
  const double budget = 1.02 * model.evaluate(ctx, mid).delay;

  printf("Sizing for yield under process variation — 5 mm link at %s,\n"
         "budget %.1f ps, %d repeaters, %d Monte-Carlo corners per size\n\n",
         tech.name.c_str(), budget / ps, repeaters, samples);

  Table table({"drive", "nominal (ps)", "sigma (ps)", "yield %", "power (mW/bit)",
               "power x yield-per-mW"});
  CsvWriter csv({"drive", "nominal_ps", "sigma_ps", "yield_pct", "power_mw"});

  for (int drive : drives) {
    LinkDesign d;
    d.drive = drive;
    d.num_repeaters = repeaters;
    const MonteCarloResult mc = monte_carlo_link(model, ctx, d, samples, 777);
    const double yield = 100.0 * mc.yield_at(budget);
    const double power = model.evaluate(ctx, d).total_power();
    table.add_row({format("D%d", drive), format("%.1f", mc.nominal_delay / ps),
                   format("%.2f", mc.sigma_delay / ps), format("%.1f", yield),
                   format("%.4f", power / mW),
                   format("%.1f", yield / (power / mW))});
    csv.add_row({format("%d", drive), format("%.2f", mc.nominal_delay / ps),
                 format("%.3f", mc.sigma_delay / ps), format("%.2f", yield),
                 format("%.5f", power / mW)});
  }

  printf("%s\n", table.to_string().c_str());
  printf("(undersized repeaters miss the budget on most dies; upsizing buys\n"
         " yield steeply, then saturates once the wire dominates — additional\n"
         " size only burns power. The knee is the yield-aware size choice.)\n");

  pim::bench::export_csv(csv, "sizing_for_yield.csv");
  return 0;
}
