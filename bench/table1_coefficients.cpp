// Reproduces paper Table I: the fitted coefficients of the predictive
// models across all six technologies (90/65/45/32/22/16 nm).
//
// Every coefficient is produced by the full methodology: transistor-level
// characterization sweeps -> linear/quadratic/multiple regressions ->
// composition calibration against golden distributed lines. Fits are
// cached in bench_out/ so re-runs are instant.
#include <cstdio>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("table1_coefficients");
  printf("Table I — fitting coefficients for the predictive models across six technologies\n");
  printf("(inverter repeaters, fall edge; SI units; b2 carries the 1/w_r factor —\n"
         " see DESIGN.md for the documented deviation)\n\n");

  std::vector<std::string> header = {"coefficient", "unit"};
  for (TechNode n : all_tech_nodes()) header.push_back(tech_node_name(n));
  Table table(header);
  CsvWriter csv(header);

  std::vector<TechnologyFit> fits;
  for (TechNode n : all_tech_nodes()) fits.push_back(pim::bench::cached_fit(n));

  auto row = [&](const std::string& name, const std::string& unit,
                 auto getter, const char* fmt) {
    std::vector<std::string> cells = {name, unit};
    for (const TechnologyFit& f : fits) cells.push_back(format(fmt, getter(f)));
    table.add_row(cells);
    csv.add_row(cells);
  };

  row("a0 (intrinsic)", "ps", [](const TechnologyFit& f) { return f.inv_fall.a0 / ps; }, "%.3f");
  row("a1", "-", [](const TechnologyFit& f) { return f.inv_fall.a1; }, "%.4f");
  row("a2", "1/ns", [](const TechnologyFit& f) { return f.inv_fall.a2 * ns; }, "%.4f");
  row("rho0 (rd inter.)", "ohm*um", [](const TechnologyFit& f) { return f.inv_fall.rho0 / um; }, "%.1f");
  row("rho1 (rd slope)", "ohm*um/ns", [](const TechnologyFit& f) { return f.inv_fall.rho1 * ns / um; }, "%.1f");
  row("b0 (slew inter.)", "ps", [](const TechnologyFit& f) { return f.inv_fall.b0 / ps; }, "%.2f");
  row("b1 (slew coeff)", "-", [](const TechnologyFit& f) { return f.inv_fall.b1; }, "%.4f");
  row("b2 (load coeff)", "ps*um/fF", [](const TechnologyFit& f) { return f.inv_fall.b2 * fF / (ps * um); }, "%.3f");
  table.add_separator();
  row("gamma (cin)", "fF/um", [](const TechnologyFit& f) { return f.gamma * um / fF; }, "%.3f");
  row("leak n slope", "nW/um", [](const TechnologyFit& f) { return f.leakage.n1 * um / nW; }, "%.2f");
  row("leak p slope", "nW/um", [](const TechnologyFit& f) { return f.leakage.p1 * um / nW; }, "%.2f");
  row("area0", "um^2", [](const TechnologyFit& f) { return f.area0 / um2; }, "%.3f");
  row("area1", "um^2/um", [](const TechnologyFit& f) { return f.area1 * um / um2; }, "%.3f");
  table.add_separator();
  row("kappa_c coupled", "-", [](const TechnologyFit& f) { return f.comp_coupled.kappa_c; }, "%.3f");
  row("kappa_c1 coupled", "-", [](const TechnologyFit& f) { return f.comp_coupled.kappa_c1; }, "%.3f");
  row("kappa_w coupled", "-", [](const TechnologyFit& f) { return f.comp_coupled.kappa_w; }, "%.3f");
  row("kappa_c shielded", "-", [](const TechnologyFit& f) { return f.comp_shielded.kappa_c; }, "%.3f");
  row("kappa_c1 shielded", "-", [](const TechnologyFit& f) { return f.comp_shielded.kappa_c1; }, "%.3f");
  row("kappa_w shielded", "-", [](const TechnologyFit& f) { return f.comp_shielded.kappa_w; }, "%.3f");
  table.add_separator();
  row("R2 intrinsic", "-", [](const TechnologyFit& f) { return f.inv_fall.r2_intrinsic; }, "%.4f");
  row("R2 drive res", "-", [](const TechnologyFit& f) { return f.inv_fall.r2_drive_res; }, "%.4f");
  row("worst comp err SS", "%", [](const TechnologyFit& f) { return 100 * f.comp_coupled.worst_rel_error; }, "%.1f");
  row("worst comp err SH", "%", [](const TechnologyFit& f) { return 100 * f.comp_shielded.worst_rel_error; }, "%.1f");

  printf("%s\n", table.to_string().c_str());
  printf("Trends to check against the paper: rho0/rho1 grow as devices shrink;\n"
         "gamma (input-cap density) shrinks; leakage slopes peak toward the\n"
         "leakier HP nodes; all R^2 close to 1.\n");

  pim::bench::export_csv(csv, "table1_coefficients.csv");
  return 0;
}
