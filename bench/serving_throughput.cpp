// EXTENSION bench (beyond the paper): the serving load generator behind
// the daemon's acceptance bar (docs/serving.md).
//
// Spins an in-process pim::serve::Server on a Unix socket — the same
// core tools/pimd.cpp wraps — warms it with the cached 65nm calibrated
// fit, then drives the three load shapes from bench/serving_load.hpp:
// a pipelined burst of single evaluate requests (sustained
// requests/sec), lock-step round trips (p50/p90/p99/max tail latency),
// and one large batch line (per-item cost with the envelope
// amortized). It also re-executes the same request line in-process
// through wire::execute_line and requires the warm daemon response to
// be byte-identical — the codec-sharing contract the serving docs
// promise.
//
// Exits nonzero when the warm daemon sustains < 10k simple model-eval
// requests/sec or the identity check fails, so CI can gate on it.
//
//   serving_throughput [--requests N] [--lockstep N] [--batch N]
//                      [--workers N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "api/wire.hpp"
#include "cache/store.hpp"
#include "serve/server.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include "common.hpp"
#include "serving_load.hpp"

using namespace pim;

int main(int argc, char** argv) {
  int requests = 8192, lockstep = 512, batch = 512, workers = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> int {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serving_throughput: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--requests") {
      requests = value();
    } else if (arg == "--lockstep") {
      lockstep = value();
    } else if (arg == "--batch") {
      batch = value();
    } else if (arg == "--workers") {
      workers = value();
    } else {
      std::fprintf(stderr,
                   "usage: serving_throughput [--requests N] [--lockstep N] "
                   "[--batch N] [--workers N]\n");
      return 2;
    }
  }

  pim::bench::MetricsArtifact metrics("serving_throughput");

  // Scratch cache directory, like cache_effect: the run must not read
  // or pollute the user's cache, and a wiped store makes the warm-up
  // cost reproducible.
  const std::string cache_dir =
      pim::bench::out_dir() + "/serving_throughput.cache";
  std::filesystem::remove_all(cache_dir);
  cache::set_dir(cache_dir);
  cache::set_mode(cache::Mode::ReadWrite);

  // Materialize the coeffs cache before the daemon starts so the first
  // request loads a fit instead of characterizing for seconds.
  { const auto warm = pim::bench::cached_model(TechNode::N65); (void)warm; }

  serve::ServerOptions opt;
  opt.socket_path = pim::bench::out_dir() + "/serving_throughput.sock";
  opt.workers = workers;
  opt.queue_limit = requests + 64;  // admission must never reject the burst
  serve::Server server(opt);
  server.start();

  printf("Serving throughput against an in-process daemon (%d workers)\n\n",
         workers);

  pim::bench::serving::LoadReport report;
  try {
    report = pim::bench::serving::drive(opt.socket_path, requests, lockstep,
                                        batch);
  } catch (...) {
    server.stop();
    throw;
  }

  // Byte-identity: the warm daemon response vs the same line executed
  // in-process through the shared codec.
  const std::string direct =
      api::wire::execute_line(pim::bench::serving::eval_request_line(1));
  const bool identical = direct == report.warm_response;

  server.stop();
  std::filesystem::remove(opt.socket_path);
  cache::set_dir("");

  const double req_per_s =
      report.pipelined_seconds > 0.0
          ? report.pipelined_requests / report.pipelined_seconds
          : 0.0;
  const double us_per_req =
      report.pipelined_seconds * 1e6 / report.pipelined_requests;
  const double p50 = pim::bench::serving::rtt_quantile(report.rtt_us, 0.5);
  const double p90 = pim::bench::serving::rtt_quantile(report.rtt_us, 0.9);
  const double p99 = pim::bench::serving::rtt_quantile(report.rtt_us, 0.99);
  const double rtt_max = report.rtt_us.empty() ? 0.0 : report.rtt_us.back();
  const double batch_item_us =
      report.batch_items > 0 ? report.batch_seconds * 1e6 / report.batch_items
                             : 0.0;

  Table table({"shape", "requests", "metric", "value"});
  table.add_row({"pipelined", format("%d", report.pipelined_requests),
                 "req/s", format("%.0f", req_per_s)});
  table.add_row({"pipelined", format("%d", report.pipelined_requests),
                 "us/req", format("%.2f", us_per_req)});
  table.add_row({"lock-step", format("%d", lockstep), "p50 us",
                 format("%.1f", p50)});
  table.add_row({"lock-step", format("%d", lockstep), "p90 us",
                 format("%.1f", p90)});
  table.add_row({"lock-step", format("%d", lockstep), "p99 us",
                 format("%.1f", p99)});
  table.add_row({"lock-step", format("%d", lockstep), "max us",
                 format("%.1f", rtt_max)});
  table.add_row({"batch", format("%d", report.batch_items), "us/item",
                 format("%.2f", batch_item_us)});
  table.add_row({"identity", "1", "byte-identical", identical ? "yes" : "NO"});
  printf("%s\n", table.to_string().c_str());

  CsvWriter csv({"metric", "value"});
  csv.add_row({"req_per_s", format("%.1f", req_per_s)});
  csv.add_row({"us_per_req", format("%.3f", us_per_req)});
  csv.add_row({"rtt_p50_us", format("%.2f", p50)});
  csv.add_row({"rtt_p90_us", format("%.2f", p90)});
  csv.add_row({"rtt_p99_us", format("%.2f", p99)});
  csv.add_row({"rtt_max_us", format("%.2f", rtt_max)});
  csv.add_row({"batch_item_us", format("%.3f", batch_item_us)});
  csv.add_row({"byte_identical", identical ? "1" : "0"});
  pim::bench::export_csv(csv, "serving_throughput.csv");

  obs::registry().gauge("bench.serving.req_per_s").set(req_per_s);
  obs::registry().gauge("bench.serving.rtt_p99_us").set(p99);
  obs::registry().gauge("bench.serving.batch_item_us").set(batch_item_us);

  constexpr double kFloorReqPerS = 10000.0;
  const bool fast_enough = req_per_s >= kFloorReqPerS;
  printf("%s: %.0f req/s warm (floor %.0f), responses %s\n",
         fast_enough && identical ? "PASS" : "FAIL", req_per_s, kFloorReqPerS,
         identical ? "byte-identical to in-process calls"
                   : "DIFFER from in-process calls");
  return fast_enough && identical ? 0 : 1;
}
