// Reproduces paper Table III: the impact of interconnect-model accuracy
// on NoC synthesis.
//
// Both SoC designs (VPROC, 42 cores; DVOPD, 26 cores; 128-bit data) are
// synthesized by the COSI-style tool twice per technology node — once
// with the "original" model (Bakoglu, uncalibrated, coupling-blind,
// simplistic area) and once with the proposed calibrated model — at the
// paper's clocks (1.5 / 2.25 / 3.0 GHz for 90 / 65 / 45 nm). Reported
// per run: dynamic and leakage interconnect power, worst link delay,
// area, average hop count, router count — plus the implementability
// audit: each link chosen by the original model is re-timed with the
// proposed model against the hop budget.
#include <cstdio>

#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("table3_noc_synthesis");
  printf("Table III — model impact on NoC synthesis (clocks: 1.5/2.25/3.0 GHz)\n\n");

  const std::vector<TechNode> nodes = {TechNode::N90, TechNode::N65, TechNode::N45};

  Table table({"design", "tech", "model", "Pdyn (mW)", "Pleak (mW)", "delay (ps)",
               "area (mm2)", "hops", "routers", "audit viol", "worst x budget"});
  CsvWriter csv({"design", "tech", "model", "dynamic_mw", "leakage_mw", "worst_delay_ps",
                 "area_mm2", "avg_hops", "max_hops", "routers", "links",
                 "audit_violations", "audit_worst_ratio"});

  for (const SocSpec& spec : {vproc_spec(), dvopd_spec()}) {
    for (TechNode node : nodes) {
      const Technology& tech = technology(node);
      const TechnologyFit fit = pim::bench::cached_fit(node);
      const ProposedModel proposed(tech, fit);
      const BakogluModel original(tech);

      for (const InterconnectModel* model :
           {static_cast<const InterconnectModel*>(&original),
            static_cast<const InterconnectModel*>(&proposed)}) {
        const NocSynthesisResult r = synthesize_noc(spec, *model);
        // Implementability audit: the proposed (calibrated) model re-times
        // every chosen link against the hop budget.
        const AuditResult audit =
            audit_links(r.architecture, proposed, r.base_context, r.delay_budget);

        const NocMetrics& m = r.metrics;
        table.add_row({spec.name, tech.name, model->name(),
                       format("%.2f", m.dynamic_power() / mW),
                       format("%.2f", m.leakage_power() / mW),
                       format("%.0f", m.worst_link_delay / ps),
                       format("%.3f", m.total_area() / mm2), format("%.2f", m.avg_hops),
                       format("%d", m.num_routers), format("%d", audit.violations),
                       format("%.2f", audit.worst_overshoot)});
        csv.add_row({spec.name, tech.name, model->name(),
                     format("%.4f", m.dynamic_power() / mW),
                     format("%.4f", m.leakage_power() / mW),
                     format("%.1f", m.worst_link_delay / ps),
                     format("%.5f", m.total_area() / mm2), format("%.3f", m.avg_hops),
                     format("%d", m.max_hops), format("%d", m.num_routers),
                     format("%d", m.num_links), format("%d", audit.violations),
                     format("%.3f", audit.worst_overshoot)});
      }
      table.add_separator();
    }
  }

  printf("%s\n", table.to_string().c_str());
  printf("Shapes to check against the paper:\n"
         " * proposed-model dynamic power well above the original's estimate\n"
         "   (coupling capacitance the original neglects), up to ~3x;\n"
         " * dynamic power RISES from 65 to 45 nm (library vdd 1.0 -> 1.1 V);\n"
         " * the original model admits longer wires / fewer hops; its links\n"
         "   fail the audit (non-conservative abstraction -> not implementable);\n"
         " * area estimates differ strongly (simplistic original area model).\n");

  pim::bench::export_csv(csv, "table3_noc_synthesis.csv");
  return 0;
}
