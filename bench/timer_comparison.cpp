// Timer zoo (extends the paper's Table II discussion of the modeling
// spectrum, §II): the same buffered lines analyzed at every fidelity
// level the library offers, with error and cost against the
// transistor-level golden:
//
//   elmore      first-principles Rd + scaled Elmore (no calibration)
//   nldm+elmore Liberty-style tables + scaled-Elmore wire
//   nldm+awe    Liberty-style tables + two-pole AWE wire
//   proposed    the paper's calibrated closed-form model
//
// The point the paper makes in §II lands as a table: detailed methods
// need data a system-level designer does not have, classic closed forms
// are inaccurate, the calibrated model gets detailed-method accuracy at
// closed-form cost.
#include <cmath>
#include <cstdio>

#include "charlib/characterize.hpp"
#include "models/proposed.hpp"
#include "sta/elmore.hpp"
#include "sta/nldm_timer.hpp"
#include "sta/signoff.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("timer_comparison");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);

  // NLDM tables for the drive the configurations use.
  CharacterizationOptions copt;
  copt.drives = {12};
  copt.buffers = false;
  std::fprintf(stderr, "characterizing INVD12 tables...\n");
  const CellLibrary lib = characterize_library(tech, copt);

  printf("Timer comparison — %s, INVD12 repeaters, worst-case coupling\n\n",
         tech.name.c_str());
  Table table({"L (mm)", "N", "golden (ps)", "elmore %", "nldm+elm %", "nldm+awe %",
               "proposed %"});
  CsvWriter csv({"length_mm", "repeaters", "golden_ps", "elmore_err", "nldm_elmore_err",
                 "nldm_awe_err", "proposed_err"});

  double worst[4] = {0, 0, 0, 0};
  for (double len : {1.0, 3.0, 5.0, 10.0}) {
    LinkContext ctx;
    ctx.length = len * mm;
    ctx.input_slew = 150 * ps;
    LinkDesign d;
    d.drive = 12;
    d.num_repeaters = std::max(1, static_cast<int>(len));

    const double golden = signoff_link(tech, ctx, d).delay;
    const double e_raw = elmore_buffered_line(tech, ctx, d);
    NldmTimerOptions elm;
    elm.wire = WireDelayMethod::Elmore;
    const double e_nldm_elm = nldm_link_delay(lib, tech, ctx, d, elm).delay;
    const double e_nldm_awe = nldm_link_delay(lib, tech, ctx, d).delay;
    const double e_prop = model.evaluate(ctx, d).delay;

    auto err = [&](double v) { return 100.0 * (v - golden) / golden; };
    const double errs[4] = {err(e_raw), err(e_nldm_elm), err(e_nldm_awe), err(e_prop)};
    for (int i = 0; i < 4; ++i) worst[i] = std::max(worst[i], std::fabs(errs[i]));

    table.add_row({format("%.0f", len), format("%d", d.num_repeaters),
                   format("%.0f", golden / ps), format("%+.1f", errs[0]),
                   format("%+.1f", errs[1]), format("%+.1f", errs[2]),
                   format("%+.1f", errs[3])});
    csv.add_row({format("%.0f", len), format("%d", d.num_repeaters),
                 format("%.2f", golden / ps), format("%.2f", errs[0]),
                 format("%.2f", errs[1]), format("%.2f", errs[2]),
                 format("%.2f", errs[3])});
  }

  printf("%s\n", table.to_string().c_str());
  printf("worst |error|: elmore %.1f %%, nldm+elmore %.1f %%, nldm+awe %.1f %%, "
         "proposed %.1f %%\n\n",
         worst[0], worst[1], worst[2], worst[3]);
  printf("(the calibrated closed-form model reaches table-based-timer accuracy\n"
         " without needing any table lookup at evaluation time — §II's argument)\n");

  pim::bench::export_csv(csv, "timer_comparison.csv");
  return 0;
}
