// EXTENSION bench (beyond the paper — see DESIGN.md): cross-talk noise
// (glitch) on quiet victims, golden vs. the calibrated charge-divider
// model, across segment lengths, holder strengths, and design styles.
// Quantifies the OTHER reason (besides delay push-out) the paper's
// staggered/shielded wiring options exist.
#include <cstdio>

#include "sta/noise.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("noise_analysis");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);

  std::fprintf(stderr, "calibrating noise model against golden glitch sims...\n");
  const NoiseCalibration cal = calibrate_noise(tech, fit);
  printf("Cross-talk noise — %s, quiet victim, both neighbors switching\n", tech.name.c_str());
  printf("(charge-divider model, kappa_n = %.3f, training worst error %.0f %%)\n\n",
         cal.kappa_n, 100 * cal.worst_rel_error);

  Table table({"segment (mm)", "drive", "golden (mV)", "model (mV)", "err %",
               "% of vdd"});
  CsvWriter csv({"segment_mm", "drive", "golden_mv", "model_mv", "err_pct",
                 "fraction_of_vdd_pct"});

  for (int drive : {4, 12, 32}) {
    for (double seg : {0.3, 0.8, 1.5, 2.5}) {
      LinkContext ctx;
      ctx.length = seg * mm;
      ctx.input_slew = 100 * ps;
      LinkDesign d;
      d.drive = drive;
      d.num_repeaters = 1;
      const double g = golden_noise_peak(tech, ctx, d);
      const double m = noise_peak_model(tech, fit, ctx, d, cal.kappa_n);
      table.add_row({format("%.1f", seg), format("D%d", drive), format("%.1f", g * 1e3),
                     format("%.1f", m * 1e3), format("%+.1f", 100 * (m - g) / g),
                     format("%.1f", 100 * g / tech.vdd)});
      csv.add_row({format("%.2f", seg), format("%d", drive), format("%.2f", g * 1e3),
                   format("%.2f", m * 1e3), format("%.2f", 100 * (m - g) / g),
                   format("%.2f", 100 * g / tech.vdd)});
    }
    table.add_separator();
  }

  // Shielding: the mitigation that removes the aggressors entirely.
  {
    LinkContext ctx;
    ctx.length = 1.5 * mm;
    ctx.style = DesignStyle::Shielded;
    LinkDesign d;
    d.drive = 12;
    d.num_repeaters = 1;
    const double g = golden_noise_peak(tech, ctx, d);
    printf("%s\n", table.to_string().c_str());
    printf("shielded 1.5 mm segment: golden glitch %.1f mV (%.1f %% of vdd) — shields\n"
           "terminate the coupling that produces the 15-25 %%-of-vdd glitches above\n",
           g * 1e3, 100 * g / tech.vdd);
  }

  pim::bench::export_csv(csv, "noise_analysis.csv");
  return 0;
}
