// Mesh vs. constraint-driven synthesis (the COSI-OCC value proposition
// the paper's §I frames: application-specific synthesized interconnect
// against the regular packet-switched mesh of [8]/[11]): both built with
// the SAME calibrated link models, budgets, and router costs, for both
// SoC test cases at 65 nm.
#include <cstdio>

#include "cosi/mesh.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("mesh_vs_synthesis");
  const TechNode node = TechNode::N65;
  const auto& [tech, fit, model] = pim::bench::cached_model(node);

  printf("Mesh vs. synthesized NoC — %s @ %.2f GHz, proposed link model\n\n",
         tech.name.c_str(), unit::to_GHz(tech.clock_frequency));

  Table table({"design", "arch", "Pdyn (mW)", "Pleak (mW)", "area (mm2)",
               "hops avg/max", "routers", "links"});
  CsvWriter csv({"design", "arch", "dynamic_mw", "leakage_mw", "area_mm2", "avg_hops",
                 "max_hops", "routers", "links"});

  for (const SocSpec& spec : {mpeg4_spec(), mwd_spec(), dvopd_spec(), vproc_spec()}) {
    const NocSynthesisResult custom = synthesize_noc(spec, model);
    const NocSynthesisResult mesh = build_mesh_noc(spec, model);

    for (const auto& [name, r] :
         {std::pair<const char*, const NocSynthesisResult*>{"synthesized", &custom},
          std::pair<const char*, const NocSynthesisResult*>{"mesh", &mesh}}) {
      const NocMetrics& m = r->metrics;
      table.add_row({spec.name, name, format("%.2f", m.dynamic_power() / mW),
                     format("%.2f", m.leakage_power() / mW),
                     format("%.3f", m.total_area() / mm2),
                     format("%.2f / %d", m.avg_hops, m.max_hops),
                     format("%d", m.num_routers), format("%d", m.num_links)});
      csv.add_row({spec.name, name, format("%.4f", m.dynamic_power() / mW),
                   format("%.4f", m.leakage_power() / mW),
                   format("%.5f", m.total_area() / mm2), format("%.3f", m.avg_hops),
                   format("%d", m.max_hops), format("%d", m.num_routers),
                   format("%d", m.num_links)});
    }
    table.add_separator();
  }

  printf("%s\n", table.to_string().c_str());
  printf("(application-specific synthesis beats the regular mesh on power and\n"
         " latency by avoiding router hops the traffic never needed — the reason\n"
         " COSI-OCC synthesizes custom topologies in the first place)\n");

  pim::bench::export_csv(csv, "mesh_vs_synthesis.csv");
  return 0;
}
