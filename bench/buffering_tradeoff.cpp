// Reproduces the paper's §III-D buffering claims:
//  * delay-optimal buffering demands impractically large repeaters;
//  * weighting the objective toward power buys large power savings for a
//    tiny delay cost (paper: ~20 % power for ~2 % delay);
//  * staggered insertion (Miller factor 0) removes the cross-talk delay
//    penalty at no energy cost.
#include <cstdio>

#include "buffering/optimize.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("buffering_tradeoff");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);
  LinkContext ctx = pim::bench::link_context(tech, 5.0);

  printf("Buffering tradeoff — 5 mm global link, %s, worst-case coupling\n\n",
         tech.name.c_str());

  Table table({"weight", "N", "drive", "delay (ps)", "power (mW/bit)", "area (um2/bit)",
               "delay vs opt", "power vs opt"});
  CsvWriter csv({"weight", "repeaters", "drive", "delay_ps", "power_mw", "area_um2",
                 "delay_ratio", "power_ratio"});

  BufferingOptions base;
  base.kinds = {CellKind::Inverter};
  base.weight = 1.0;
  // Let the delay-optimal search roam into the impractically large sizes
  // the paper warns about ("extremely large repeaters having sizes that
  // are never used in practice") — the closed-form model scales exactly
  // with 1/size, so no characterized cell is needed at these drives.
  base.drives = {4,  5,  6,  7,  8,  10, 12,  14,  16,  20,  24,  28, 32,
                 40, 48, 56, 64, 80, 96, 112, 128, 160, 192, 224, 256};
  const BufferingResult opt = optimize_buffering(model, ctx, base);

  for (double w : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.3}) {
    BufferingOptions o = base;
    o.weight = w;
    const BufferingResult r = optimize_buffering(model, ctx, o);
    const double d_ratio = r.estimate.delay / opt.estimate.delay;
    const double p_ratio = r.estimate.total_power() / opt.estimate.total_power();
    table.add_row({format("%.1f", w), format("%d", r.design.num_repeaters),
                   format("D%d", r.design.drive), format("%.1f", r.estimate.delay / ps),
                   format("%.4f", r.estimate.total_power() / mW),
                   format("%.1f", r.estimate.repeater_area / um2),
                   format("%+.1f %%", 100 * (d_ratio - 1)),
                   format("%+.1f %%", 100 * (p_ratio - 1))});
    csv.add_row({format("%.2f", w), format("%d", r.design.num_repeaters),
                 format("%d", r.design.drive), format("%.2f", r.estimate.delay / ps),
                 format("%.5f", r.estimate.total_power() / mW),
                 format("%.2f", r.estimate.repeater_area / um2), format("%.4f", d_ratio),
                 format("%.4f", p_ratio)});
  }
  printf("%s\n", table.to_string().c_str());

  // Find the paper's headline point: the largest power saving costing at
  // most ~2.5 % delay (scan the weight axis finely).
  double best_saving = 0.0;
  double at_delay_cost = 0.0;
  for (double w = 1.0; w >= 0.2; w -= 0.02) {
    BufferingOptions o = base;
    o.weight = w;
    const BufferingResult r = optimize_buffering(model, ctx, o);
    const double delay_cost = r.estimate.delay / opt.estimate.delay - 1.0;
    const double saving = 1.0 - r.estimate.total_power() / opt.estimate.total_power();
    if (delay_cost <= 0.025 && saving > best_saving) {
      best_saving = saving;
      at_delay_cost = delay_cost;
    }
  }
  printf("best power saving within a 2.5 %% delay budget: %.1f %% power for %.1f %% delay\n",
         100 * best_saving, 100 * at_delay_cost);
  printf("(paper §III-D: \"power can be reduced by 20 %% at the cost of just above 2 %%\")\n\n");

  // Staggering: the SAME design with Miller factor 0 — the cross-talk
  // delay penalty disappears while the switched energy is untouched.
  LinkDesign staggered = opt.design;
  staggered.miller_factor = 0.0;
  const LinkEstimate e_stag = model.evaluate(ctx, staggered);
  printf("staggered insertion (same design): delay %.1f ps vs %.1f ps worst-case\n"
         "coupled (%.1f %% faster), identical switched energy (%.1f fJ per transition)\n",
         e_stag.delay / ps, opt.estimate.delay / ps,
         100 * (1 - e_stag.delay / opt.estimate.delay),
         e_stag.switched_cap * tech.vdd * tech.vdd / fJ);

  pim::bench::export_csv(csv, "buffering_tradeoff.csv");
  return 0;
}
