// Ablation study of the proposed model's ingredients (the effects the
// paper adds over the classic models): for each ablated variant, the
// delay error against golden sign-off on a representative grid. Shows
// which ingredient buys how much accuracy:
//   - electron scattering off
//   - barrier thickness off
//   - slew-dependent drive resistance off (rd frozen at the nominal slew)
//   - slew chaining off (every stage sees the primary input slew)
//   - Miller factor 1.0 instead of the calibrated worst-case 1.51
#include <cmath>
#include <cstdio>

#include "models/proposed.hpp"
#include "sta/signoff.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

namespace {

// Grid of evaluation points.
struct Point {
  double len_mm;
  int repeaters;
  DesignStyle style;
};

const std::vector<Point> kGrid = {
    {2.0, 2, DesignStyle::SingleSpacing}, {5.0, 5, DesignStyle::SingleSpacing},
    {10.0, 10, DesignStyle::SingleSpacing}, {5.0, 5, DesignStyle::Shielded},
};

double max_abs_error(const ProposedModel& model, const Technology& tech,
                     bool scattering, bool barrier, double miller,
                     bool freeze_rd_slew, const std::vector<double>& golden) {
  double worst = 0.0;
  for (size_t i = 0; i < kGrid.size(); ++i) {
    LinkContext ctx;
    ctx.length = kGrid[i].len_mm * mm;
    ctx.style = kGrid[i].style;
    ctx.input_slew = 300 * ps;
    ctx.wire_options.scattering = scattering;
    ctx.wire_options.barrier = barrier;
    LinkDesign d;
    d.drive = 16;
    d.num_repeaters = kGrid[i].repeaters;
    if (miller >= 0.0) d.miller_factor = miller;

    double delay;
    if (freeze_rd_slew) {
      // Ablate the slew machinery: evaluate a variant fit whose slew
      // coefficients are zeroed so rd and the intrinsic delay are frozen
      // at their zero-slew values.
      TechnologyFit frozen = model.fit();
      for (RepeaterEdgeFit* f :
           {&frozen.inv_rise, &frozen.inv_fall, &frozen.buf_rise, &frozen.buf_fall}) {
        // Fold the nominal 300 ps slew into the constants, then zero the
        // slew sensitivity.
        const double s = 300 * ps;
        f->a0 = f->a0 + f->a1 * s + f->a2 * s * s;
        f->rho0 = f->rho0 + f->rho1 * s;
        f->b0 = f->b0 + f->b1 * s;
        f->a1 = f->a2 = f->rho1 = f->b1 = 0.0;
      }
      const ProposedModel variant(tech, frozen);
      delay = variant.evaluate(ctx, d).delay;
    } else {
      delay = model.evaluate(ctx, d).delay;
    }
    worst = std::max(worst, std::fabs(delay - golden[i]) / golden[i]);
  }
  return worst;
}

}  // namespace

int main() {
  pim::bench::MetricsArtifact metrics("ablation_ingredients");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);

  printf("Ablation — contribution of each modeling ingredient (65 nm)\n");
  printf("max |delay error| vs. golden sign-off over %zu line configurations\n\n",
         kGrid.size());

  // Golden references (full physics).
  std::vector<double> golden;
  for (const Point& p : kGrid) {
    LinkContext ctx;
    ctx.length = p.len_mm * mm;
    ctx.style = p.style;
    ctx.input_slew = 300 * ps;
    LinkDesign d;
    d.drive = 16;
    d.num_repeaters = p.repeaters;
    golden.push_back(signoff_link(tech, ctx, d).delay);
  }

  Table table({"variant", "max |error| %"});
  CsvWriter csv({"variant", "max_abs_error_pct"});
  auto row = [&](const std::string& name, double err) {
    table.add_row({name, format("%.1f", 100 * err)});
    csv.add_row({name, format("%.2f", 100 * err)});
  };

  row("full model", max_abs_error(model, tech, true, true, -1.0, false, golden));
  row("no scattering", max_abs_error(model, tech, false, true, -1.0, false, golden));
  row("no barrier", max_abs_error(model, tech, true, false, -1.0, false, golden));
  row("no scattering+barrier", max_abs_error(model, tech, false, false, -1.0, false, golden));
  row("miller 1.0 (no xt amp)", max_abs_error(model, tech, true, true, 1.0, false, golden));
  row("miller 0.0 (coupling off)", max_abs_error(model, tech, true, true, 0.0, false, golden));
  row("slew-independent rd/i", max_abs_error(model, tech, true, true, -1.0, true, golden));

  printf("%s\n", table.to_string().c_str());
  printf("(every ablated ingredient increases the worst error — these are the\n"
         " effects §II says the classic models miss)\n");

  pim::bench::export_csv(csv, "ablation_ingredients.csv");
  return 0;
}
