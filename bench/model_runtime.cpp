// Micro-benchmarks for the Table II "RT" claim: closed-form model
// evaluation is orders of magnitude faster than sign-off analysis (and
// all three analytical models run at comparable speed).
//
// google-benchmark binary: reports ns/op per model and per golden
// analysis configuration.
#include <benchmark/benchmark.h>

#include "buffering/optimize.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "sta/signoff.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

namespace {

const Technology& tech() { return technology(TechNode::N65); }

const ProposedModel& proposed() {
  static const ProposedModel model(tech(), pim::bench::cached_fit(TechNode::N65));
  return model;
}

LinkContext context(double len_mm) {
  LinkContext ctx;
  ctx.length = len_mm * mm;
  ctx.input_slew = 300 * ps;
  return ctx;
}

LinkDesign design(int n) {
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = n;
  return d;
}

void BM_ProposedModel(benchmark::State& state) {
  const LinkContext ctx = context(static_cast<double>(state.range(0)));
  const LinkDesign d = design(static_cast<int>(state.range(0)));
  const ProposedModel& model = proposed();
  for (auto _ : state) benchmark::DoNotOptimize(model.evaluate(ctx, d).delay);
}
BENCHMARK(BM_ProposedModel)->Arg(1)->Arg(5)->Arg(15);

void BM_BakogluModel(benchmark::State& state) {
  const LinkContext ctx = context(5.0);
  const LinkDesign d = design(5);
  const BakogluModel model(tech());
  for (auto _ : state) benchmark::DoNotOptimize(model.evaluate(ctx, d).delay);
}
BENCHMARK(BM_BakogluModel);

void BM_PamunuwaModel(benchmark::State& state) {
  const LinkContext ctx = context(5.0);
  const LinkDesign d = design(5);
  const PamunuwaModel model(tech());
  for (auto _ : state) benchmark::DoNotOptimize(model.evaluate(ctx, d).delay);
}
BENCHMARK(BM_PamunuwaModel);

void BM_BufferingSearch(benchmark::State& state) {
  const LinkContext ctx = context(5.0);
  BufferingOptions opt;
  opt.weight = 0.7;
  const ProposedModel& model = proposed();
  for (auto _ : state) benchmark::DoNotOptimize(optimize_buffering(model, ctx, opt).cost);
}
BENCHMARK(BM_BufferingSearch)->Unit(benchmark::kMicrosecond);

void BM_GoldenSignoff(benchmark::State& state) {
  const LinkContext ctx = context(static_cast<double>(state.range(0)));
  const LinkDesign d = design(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(signoff_link(tech(), ctx, d).delay);
}
BENCHMARK(BM_GoldenSignoff)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Metrics collection stays off unless PIM_METRICS is set, so the
  // reported ns/op reflect the uninstrumented hot path.
  pim::bench::MetricsArtifact metrics("model_runtime", /*collect=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Thread-scaling sweep of the Monte-Carlo yield flow — the repo's most
  // parallel workload — AFTER the timing benchmarks so their ns/op stay
  // uninstrumented. The sweep's seconds/speedup gauges always land in
  // bench_out/model_runtime.metrics.json.
  obs::set_enabled(true);
  const LinkContext ctx = context(5.0);
  const LinkDesign d = design(5);
  pim::bench::thread_scaling_sweep("mc_yield", 8, [&] {
    benchmark::DoNotOptimize(
        monte_carlo_link(proposed(), ctx, d, 4000, 2026).mean_delay);
  });
  obs::save_metrics_json(pim::bench::out_dir() + "/model_runtime.metrics.json");
  return 0;
}
