// Bus-width exploration (a system-level knob the paper's models enable):
// the same SoC synthesized at different link data widths. Wider links
// run at lower utilization (less dynamic energy per bit of payload) but
// pay more tracks, repeaters, and router area; narrow links saturate and
// spill into parallel channels. The calibrated models price all of it.
#include <cstdio>

#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("buswidth_exploration");
  const TechNode node = TechNode::N65;
  const auto& [tech, fit, model] = pim::bench::cached_model(node);

  printf("Bus-width exploration — DVOPD at %s @ %.2f GHz, proposed model\n\n",
         tech.name.c_str(), unit::to_GHz(tech.clock_frequency));

  Table table({"width (bits)", "Pdyn (mW)", "Pleak (mW)", "area (mm2)", "links",
               "routers", "hops avg"});
  CsvWriter csv({"width_bits", "dynamic_mw", "leakage_mw", "area_mm2", "links",
                 "routers", "avg_hops"});

  for (int width : {32, 64, 128, 256}) {
    SocSpec spec = dvopd_spec();
    spec.data_width = width;
    const NocSynthesisResult r = synthesize_noc(spec, model);
    const NocMetrics& m = r.metrics;
    table.add_row({format("%d", width), format("%.2f", m.dynamic_power() / mW),
                   format("%.2f", m.leakage_power() / mW),
                   format("%.3f", m.total_area() / mm2), format("%d", m.num_links),
                   format("%d", m.num_routers), format("%.2f", m.avg_hops)});
    csv.add_row({format("%d", width), format("%.4f", m.dynamic_power() / mW),
                 format("%.4f", m.leakage_power() / mW),
                 format("%.5f", m.total_area() / mm2), format("%d", m.num_links),
                 format("%d", m.num_routers), format("%.3f", m.avg_hops)});
  }

  printf("%s\n", table.to_string().c_str());
  printf("(leakage and area scale with width while DVOPD's modest bandwidth\n"
         " never stresses capacity — the narrow end of the sweep is where an\n"
         " area-constrained design should sit; dynamic power stays roughly\n"
         " flat because the same payload bits toggle regardless of width)\n");

  pim::bench::export_csv(csv, "buswidth_exploration.csv");
  return 0;
}
