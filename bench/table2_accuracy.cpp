// Reproduces paper Table II: accuracy of the delay models against the
// golden sign-off analysis of physically implemented buffered lines.
//
// For each (technology, length, design style): the line is buffered with
// a paper-realistic repeater choice (INVD4..D20 range, picked by the
// proposed-model optimizer), implemented as a distributed transistor-
// level netlist with worst-case switching aggressors, and timed by the
// golden simulator ("PT" column). The table reports the percentage error
// of Bakoglu (B), Pamunuwa (P), and the proposed model (Prop), plus the
// runtime ratio RT = golden-analysis time / proposed-model time.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "buffering/optimize.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "sta/signoff.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  pim::bench::MetricsArtifact metrics("table2_accuracy");
  printf("Table II — evaluation of model accuracy vs. golden sign-off\n");
  printf("(input transition time = 300 ps, worst-case switching aggressors)\n\n");

  const std::vector<TechNode> nodes = {TechNode::N90, TechNode::N65, TechNode::N45};
  const std::vector<double> lengths_mm = {1, 3, 5, 10, 15};
  const std::vector<DesignStyle> styles = {DesignStyle::SingleSpacing, DesignStyle::Shielded};

  Table table({"tech", "DS", "L (mm)", "N", "drive", "PT (ps)", "B %", "P %", "Prop %", "RT"});
  CsvWriter csv({"tech", "style", "length_mm", "repeaters", "drive", "golden_ps",
                 "bakoglu_err_pct", "pamunuwa_err_pct", "proposed_err_pct", "runtime_ratio"});

  double worst_prop = 0.0, worst_b = 0.0, worst_p = 0.0;
  for (TechNode node : nodes) {
    const Technology& tech = technology(node);
    const TechnologyFit fit = pim::bench::cached_fit(node);
    const ProposedModel prop(tech, fit);
    const BakogluModel bak(tech);
    const PamunuwaModel pam(tech);

    for (DesignStyle style : styles) {
      for (double len : lengths_mm) {
        LinkContext ctx;
        ctx.style = style;
        ctx.length = len * mm;
        ctx.input_slew = 300 * ps;

        // Paper-realistic buffering: uniform INVD12 repeaters at a fixed
        // per-node segment pitch — mirroring the paper's physical
        // implementation (repeaters "placed at equal distances", sizes in
        // the INVD4..INVD20 range), independent of any model.
        const double seg_target =
            node == TechNode::N90 ? 1.25 * mm : (node == TechNode::N65 ? 1.0 * mm : 0.75 * mm);
        LinkDesign design;
        design.kind = CellKind::Inverter;
        design.drive = 12;
        design.num_repeaters =
            std::max(1, static_cast<int>(std::lround(ctx.length / seg_target)));
        const BufferingResult chosen{true, design, ctx.layer,
                                     prop.evaluate(ctx, design), 0.0, 0};

        const auto t0 = std::chrono::steady_clock::now();
        const SignoffResult golden = signoff_link(tech, ctx, chosen.design);
        const double t_golden = seconds_since(t0);

        // Model runtime: average over repeated evaluations.
        const int reps = 2000;
        const auto t1 = std::chrono::steady_clock::now();
        double sink = 0.0;
        for (int r = 0; r < reps; ++r) sink += prop.evaluate(ctx, chosen.design).delay;
        const double t_model = seconds_since(t1) / reps;
        (void)sink;

        const double d_b = bak.evaluate(ctx, chosen.design).delay;
        const double d_p = pam.evaluate(ctx, chosen.design).delay;
        const double d_prop = prop.evaluate(ctx, chosen.design).delay;
        auto err = [&](double d) { return 100.0 * (d - golden.delay) / golden.delay; };
        worst_b = std::max(worst_b, std::fabs(err(d_b)));
        worst_p = std::max(worst_p, std::fabs(err(d_p)));
        worst_prop = std::max(worst_prop, std::fabs(err(d_prop)));

        const double rt = t_golden / t_model;
        table.add_row({tech.name, design_style_name(style), format("%.0f", len),
                       format("%d", chosen.design.num_repeaters),
                       format("D%d", chosen.design.drive),
                       format("%.0f", golden.delay / ps), format("%+.1f", err(d_b)),
                       format("%+.1f", err(d_p)), format("%+.1f", err(d_prop)),
                       format("%.0fx", rt)});
        csv.add_row({tech.name, design_style_name(style), format("%.0f", len),
                     format("%d", chosen.design.num_repeaters),
                     format("%d", chosen.design.drive), format("%.2f", golden.delay / ps),
                     format("%.2f", err(d_b)), format("%.2f", err(d_p)),
                     format("%.2f", err(d_prop)), format("%.1f", rt)});
      }
      table.add_separator();
    }
  }

  printf("%s\n", table.to_string().c_str());
  printf("worst |error|: Bakoglu %.1f %%, Pamunuwa %.1f %%, proposed %.1f %%\n",
         worst_b, worst_p, worst_prop);
  printf("(paper: proposed within ~12 %%; previous models err between -7 %% and 106 %%;\n"
         " the proposed model is orders of magnitude faster than sign-off — RT column)\n");

  pim::bench::export_csv(csv, "table2_accuracy.csv");
  return 0;
}
