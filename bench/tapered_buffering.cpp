// Tapered vs. uniform buffering (ablation of the paper's §III-D
// uniformity assumption): the van Ginneken dynamic program optimizes
// per-slot placement and sizes; the uniform search is the paper's
// exhaustive equal-size/equal-spacing scan. Both scored on the same
// Elmore-composed objective.
//
// Expected shape: for homogeneous point-to-point wires uniform buffering
// is near-optimal (sub-percent gap) — justifying the paper's simpler
// search — while a heavy sink or an asymmetric situation lets the DP
// taper visibly.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "buffering/vanginneken.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

namespace {

// Best uniform placement (snapped to the DP grid) on the DP objective.
double best_uniform(const Technology& tech, const TechnologyFit& fit,
                    const LinkContext& ctx, const VanGinnekenOptions& opt,
                    int* n_out, int* d_out) {
  const double piece = ctx.length / (opt.slots + 1);
  double best = tapered_delay(tech, fit, ctx, {}, opt);
  *n_out = 0;
  *d_out = 0;
  for (int n = 1; n <= opt.slots; ++n) {
    for (int drive : opt.drives) {
      std::vector<TaperedRepeater> uniform;
      for (int k = 1; k <= n; ++k) {
        const double snapped = std::clamp(
            std::round(k * ctx.length / (n + 1) / piece), 1.0,
            static_cast<double>(opt.slots)) * piece;
        if (!uniform.empty() && uniform.back().position == snapped) continue;
        uniform.push_back({snapped, drive});
      }
      const double d = tapered_delay(tech, fit, ctx, uniform, opt);
      if (d < best) {
        best = d;
        *n_out = static_cast<int>(uniform.size());
        *d_out = drive;
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  pim::bench::MetricsArtifact metrics("tapered_buffering");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);

  printf("Tapered (van Ginneken) vs. uniform buffering — %s\n\n", tech.name.c_str());
  Table table({"L (mm)", "sink (fF)", "uniform best", "tapered", "gain %", "taper sizes"});
  CsvWriter csv({"length_mm", "sink_ff", "uniform_ps", "tapered_ps", "gain_pct", "sizes"});

  VanGinnekenOptions opt;
  opt.slots = 40;
  opt.drives = {4, 8, 16, 32, 64};

  for (const auto& [len_mm, sink_ff] :
       std::vector<std::pair<double, double>>{
           {2.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}, {5.0, 500.0}, {5.0, 2000.0}}) {
    LinkContext ctx;
    ctx.length = len_mm * mm;
    VanGinnekenOptions o = opt;
    if (sink_ff > 0.0) o.sink_cap = sink_ff * fF;

    int n_uni = 0, d_uni = 0;
    const double uniform = best_uniform(tech, fit, ctx, o, &n_uni, &d_uni);
    const TaperedBuffering dp = van_ginneken(tech, fit, ctx, o);

    std::string sizes;
    for (const TaperedRepeater& r : dp.repeaters)
      sizes += format("D%d ", r.drive);
    if (sizes.empty()) sizes = "-";

    table.add_row({format("%.0f", len_mm), format("%.0f", sink_ff),
                   format("%.1f ps (%dxD%d)", uniform / ps, n_uni, d_uni),
                   format("%.1f ps", dp.delay / ps),
                   format("%.2f", 100.0 * (1.0 - dp.delay / uniform)), sizes});
    csv.add_row({format("%.1f", len_mm), format("%.0f", sink_ff),
                 format("%.2f", uniform / ps), format("%.2f", dp.delay / ps),
                 format("%.3f", 100.0 * (1.0 - dp.delay / uniform)), sizes});
  }

  printf("%s\n", table.to_string().c_str());
  printf("(homogeneous wires: uniform is near-optimal, validating the paper's\n"
         " §III-D search; fat sinks pull a tapered chain out of the DP)\n");

  pim::bench::export_csv(csv, "tapered_buffering.csv");
  return 0;
}
