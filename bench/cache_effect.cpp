// EXTENSION bench (beyond the paper): cold-vs-warm sweeps of the
// content-addressed result cache (docs/caching.md).
//
// Runs the three cached flows — calibrated fit, buffering search,
// Monte-Carlo yield — twice against a scratch cache directory: once cold
// (directory wiped) and once warm (same process, memory tier dropped, so
// the second pass exercises the on-disk tier exactly like a fresh
// process would). Asserts the warm results are bit-identical to the cold
// ones and reports the wall-time ratio; cold/warm seconds and speedups
// land as bench.cache.* gauges in this bench's metrics.json artifact
// next to the store's own cache.hit / cache.miss counters.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "buffering/optimize.hpp"
#include "cache/store.hpp"
#include "charlib/coeffs_io.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

namespace {

double seconds_of(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  pim::bench::MetricsArtifact metrics("cache_effect");

  // Scratch cache under the bench output directory: wiped for a true
  // cold pass, shared by both passes, independent of the user's
  // ~/.cache/pim (and of PIM_CACHE / PIM_CACHE_DIR in the environment).
  const std::string cache_dir = pim::bench::out_dir() + "/cache_effect.cache";
  std::filesystem::remove_all(cache_dir);
  cache::set_dir(cache_dir);
  cache::set_mode(cache::Mode::ReadWrite);

  printf("Content-addressed cache, cold vs warm (scratch dir %s)\n\n",
         cache_dir.c_str());

  Table table({"flow", "cold (s)", "warm (s)", "speedup", "identical"});
  CsvWriter csv({"flow", "cold_seconds", "warm_seconds", "speedup", "identical"});
  const auto record = [&](const char* flow, double cold, double warm, bool same) {
    const double speedup = warm > 0.0 ? cold / warm : 0.0;
    table.add_row({flow, format("%.3f", cold), format("%.3f", warm),
                   format("%.0fx", speedup), same ? "yes" : "NO"});
    csv.add_row({flow, format("%.4f", cold), format("%.4f", warm),
                 format("%.2f", speedup), same ? "1" : "0"});
    const std::string prefix = std::string("bench.cache.") + flow;
    obs::registry().gauge(prefix + ".cold_seconds").set(cold);
    obs::registry().gauge(prefix + ".warm_seconds").set(warm);
    obs::registry().gauge(prefix + ".speedup").set(speedup);
    require(same, std::string("cache_effect: warm ") + flow +
                      " result differs from cold — cache is not transparent");
  };

  // --- calibrated fit: the characterization deck is the expensive part.
  TechnologyFit cold_fit, warm_fit;
  const double fit_cold =
      seconds_of([&] { cold_fit = calibrated_fit(TechNode::N65, ""); });
  cache::Store::global().clear_memory();  // force the disk tier, like a new process
  const double fit_warm =
      seconds_of([&] { warm_fit = calibrated_fit(TechNode::N65, ""); });
  record("fit", fit_cold, fit_warm, write_fit(warm_fit) == write_fit(cold_fit));

  const Technology& tech = technology(TechNode::N65);
  const ProposedModel model(tech, cold_fit);
  LinkContext ctx;
  ctx.length = 5 * mm;
  ctx.input_slew = 100 * ps;
  ctx.frequency = tech.clock_frequency;

  // --- buffering search across a length sweep (the NoC synthesis inner
  // loop). One knob sweep = many optimize_buffering_cached calls.
  const auto buffering_sweep = [&](std::vector<BufferingResult>& out) {
    out.clear();
    BufferingOptions opt;
    opt.weight = 0.5;
    for (int tenths = 5; tenths <= 60; tenths += 5) {
      LinkContext c = ctx;
      c.length = 0.1 * tenths * mm;
      out.push_back(optimize_buffering_cached(model, c, opt));
    }
  };
  std::vector<BufferingResult> cold_buf, warm_buf;
  const double buf_cold = seconds_of([&] { buffering_sweep(cold_buf); });
  cache::Store::global().clear_memory();
  const double buf_warm = seconds_of([&] { buffering_sweep(warm_buf); });
  bool buf_same = cold_buf.size() == warm_buf.size();
  for (size_t i = 0; buf_same && i < cold_buf.size(); ++i)
    buf_same = warm_buf[i].feasible == cold_buf[i].feasible &&
               warm_buf[i].design.num_repeaters == cold_buf[i].design.num_repeaters &&
               warm_buf[i].design.drive == cold_buf[i].design.drive &&
               warm_buf[i].cost == cold_buf[i].cost &&
               warm_buf[i].estimate.delay == cold_buf[i].estimate.delay;
  record("buffering", buf_cold, buf_warm, buf_same);

  // --- Monte-Carlo yield (per-sample RNG streams; the cache returns the
  // exact sorted delay vector, so quantiles and yields match bit for bit).
  LinkDesign design = cold_buf.back().design;
  const int samples = 4000;
  MonteCarloResult cold_mc, warm_mc;
  const double mc_cold = seconds_of(
      [&] { cold_mc = monte_carlo_link_cached(model, ctx, design, samples, 2026); });
  cache::Store::global().clear_memory();
  const double mc_warm = seconds_of(
      [&] { warm_mc = monte_carlo_link_cached(model, ctx, design, samples, 2026); });
  record("yield", mc_cold, mc_warm,
         warm_mc.delays == cold_mc.delays &&
             warm_mc.nominal_delay == cold_mc.nominal_delay &&
             warm_mc.sigma_delay == cold_mc.sigma_delay);

  printf("%s\n", table.to_string().c_str());
  printf("(warm passes read the on-disk tier — the memory tier is dropped\n"
         " between passes, so these ratios hold across processes too)\n");

  pim::bench::export_csv(csv, "cache_effect.csv");
  cache::set_dir("");
  return 0;
}
