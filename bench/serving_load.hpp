// Wire-protocol load driver shared by bench/serving_throughput (the
// standalone load generator) and the pim_bench `serving_throughput`
// case, so the committed BENCH_*.json and the CI gate measure the same
// traffic. Drives a warm pimd-shaped daemon over its Unix socket with
// the three shapes that matter for serving (docs/serving.md):
//
//  - a pipelined burst of identical single evaluate lines (throughput:
//    the client never waits, so the socket + codec + dispatch path is
//    saturated the way a batching client saturates it),
//  - lock-step request/response round trips (tail latency as an
//    interactive caller sees it),
//  - one large {"op":"batch"} line (per-item cost with the envelope
//    amortized).
//
// The caller owns the server (in-process pim::serve::Server or a real
// pimd) and must have materialized the bench coeffs cache first
// (cached_model(TechNode::N65)) — the first warm-up round trip then
// pays only the fit load + resident-model build, and everything
// measured after it is the daemon's steady state.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/pim_api.hpp"
#include "api/wire.hpp"
#include "common.hpp"
#include "util/error.hpp"

namespace pim::bench::serving {

/// Connects to a daemon's Unix-domain socket.
inline int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error("serving bench: socket(): " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw Error("serving bench: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw Error("serving bench: cannot connect to " + path + ": " +
                std::strerror(errno));
  }
  return fd;
}

/// Streams `bytes` fully; false on a send failure (the reader side
/// surfaces the diagnosis, so this stays safe to call off-thread).
inline bool send_all(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Buffered reader over the newline-delimited response stream.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one response line (without the newline); false on EOF/error.
  bool next(std::string& line) {
    for (;;) {
      const size_t nl = buffer_.find('\n', scanned_);
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        return true;
      }
      scanned_ = buffer_.size();
      if (!fill()) return false;
    }
  }

  /// Counts responses until `want` arrive; returns how many it saw
  /// (short on EOF/error). Used for the pipelined burst, where the
  /// responses are identical and only their arrival matters.
  int drain(int want) {
    int seen = 0;
    size_t pos = 0;
    for (;;) {
      for (; pos < buffer_.size(); ++pos) {
        if (buffer_[pos] != '\n') continue;
        if (++seen == want) {
          buffer_.erase(0, pos + 1);
          scanned_ = 0;
          return seen;
        }
      }
      if (!fill()) {
        buffer_.clear();
        scanned_ = 0;
        return seen;
      }
    }
  }

 private:
  bool fill() {
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_;
  std::string buffer_;
  size_t scanned_ = 0;
};

/// The "simple model eval" the ≥10k req/s acceptance bar counts: a 5 mm
/// 65nm link evaluated from the bench's cached calibrated fit
/// (bench_out/coeffs_65nm.pimfit — materialize it with cached_model
/// before driving load, or the first request characterizes).
inline api::LinkEvalRequest eval_request() {
  api::LinkEvalRequest req;
  req.link.tech = "65nm";
  req.link.length_mm = 5.0;
  req.link.coeffs_path = out_dir() + "/coeffs_65nm.pimfit";
  return req;
}

/// eval_request() as one canonical envelope line, newline included.
inline std::string eval_request_line(int64_t id) {
  return api::wire::write_request_line(id, api::AnyRequest{eval_request()}) +
         "\n";
}

struct LoadReport {
  int pipelined_requests = 0;
  double pipelined_seconds = 0.0;
  std::vector<double> rtt_us;  ///< sorted lock-step round-trip times [us]
  int batch_items = 0;
  double batch_seconds = 0.0;
  /// The last warm single-request response line (no newline) — callers
  /// compare it against wire::execute_line for the byte-identity check.
  std::string warm_response;
};

/// A quantile over the sorted rtt_us vector (linear interpolation).
inline double rtt_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Drives the three load shapes against the daemon at `socket_path`.
/// Throws Error when the stream breaks (daemon died, send failed,
/// responses missing) — a load run that did not complete has no number
/// worth recording.
inline LoadReport drive(const std::string& socket_path, int pipelined,
                        int lockstep, int batch_items) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  const int fd = connect_unix(socket_path);
  LineReader reader(fd);
  const std::string line = eval_request_line(1);
  LoadReport report;

  // Warm-up round trip: pays the fit load + resident-model build once.
  if (!send_all(fd, line) || !reader.next(report.warm_response)) {
    ::close(fd);
    throw Error("serving bench: warm-up request failed");
  }

  // Pipelined burst. The writer runs off-thread so the reader drains
  // concurrently — with both sides of the socket full the daemon's
  // flush would otherwise wait on this process.
  std::string burst;
  burst.reserve(line.size() * static_cast<size_t>(pipelined));
  for (int i = 0; i < pipelined; ++i) burst += line;
  std::atomic<bool> sent{true};
  const auto burst_start = Clock::now();
  std::thread writer([&] { sent = send_all(fd, burst); });
  const int got = reader.drain(pipelined);
  report.pipelined_seconds = seconds_since(burst_start);
  writer.join();
  if (!sent || got != pipelined) {
    ::close(fd);
    throw Error("serving bench: pipelined stream failed (" +
                std::to_string(got) + "/" + std::to_string(pipelined) +
                " responses)");
  }
  report.pipelined_requests = pipelined;

  // Lock-step round trips: per-request latency as an interactive
  // caller sees it, including both socket crossings.
  report.rtt_us.reserve(static_cast<size_t>(lockstep));
  std::string response;
  for (int i = 0; i < lockstep; ++i) {
    const auto t0 = Clock::now();
    if (!send_all(fd, line) || !reader.next(response)) {
      ::close(fd);
      throw Error("serving bench: lock-step request failed");
    }
    report.rtt_us.push_back(seconds_since(t0) * 1e6);
  }
  if (lockstep > 0) report.warm_response = response;
  std::sort(report.rtt_us.begin(), report.rtt_us.end());

  // One batch line: per-item cost with the envelope amortized.
  if (batch_items > 0) {
    api::BatchRequest batch;
    batch.items.assign(static_cast<size_t>(batch_items),
                       api::AnyRequest{eval_request()});
    const std::string batch_line =
        api::wire::write_request_line(2, batch) + "\n";
    const auto t0 = Clock::now();
    if (!send_all(fd, batch_line) || !reader.next(response)) {
      ::close(fd);
      throw Error("serving bench: batch request failed");
    }
    report.batch_seconds = seconds_since(t0);
    report.batch_items = batch_items;
  }

  ::close(fd);
  return report;
}

}  // namespace pim::bench::serving
