// Reproduces the paper's §IV leakage/area validation: "with respect to
// the cell leakage-power values reported in the Liberty files for 90-,
// 65-, and 45-nm technologies, the maximum error of our predictive model
// is less than 11 %"; for cell area, "less than 8 %".
//
// The repeater sizes mirror the paper's (INVD4..INVD20 plus the larger
// drives the library carries).
#include <cmath>
#include <cstdio>

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("leakage_area_accuracy");
  printf("Leakage & area model accuracy vs. library cells (paper §IV)\n\n");

  Table table({"tech", "cell", "leak lib (nW)", "leak model (nW)", "err %",
               "area lib (um2)", "area model (um2)", "err %"});
  CsvWriter csv({"tech", "cell", "leak_lib_nw", "leak_model_nw", "leak_err_pct",
                 "area_lib_um2", "area_model_um2", "area_err_pct"});

  const std::vector<int> drives = {4, 6, 8, 12, 16, 20, 32, 48};
  double worst_leak = 0.0;
  double worst_area = 0.0;

  for (TechNode node : {TechNode::N90, TechNode::N65, TechNode::N45}) {
    const auto& [tech, fit, model] = pim::bench::cached_model(node);

    CharacterizationOptions copt;
    copt.slew_axis = {50 * ps, 200 * ps};
    copt.fanout_axis = {2.0, 10.0};
    for (int drive : drives) {
      const RepeaterCell cell = characterize_cell(tech, CellKind::Inverter, drive, copt);
      const double leak_lib = cell.leakage_avg();
      const double leak_model = fit.leakage.eval_avg(cell.wn, cell.wp);
      const double area_lib = cell.area;
      const double area_model = fit.area0 + fit.area1 * cell.wn;
      const double e_leak = 100.0 * (leak_model - leak_lib) / leak_lib;
      const double e_area = 100.0 * (area_model - area_lib) / area_lib;
      worst_leak = std::max(worst_leak, std::fabs(e_leak));
      worst_area = std::max(worst_area, std::fabs(e_area));
      table.add_row({tech.name, cell.name, format("%.2f", leak_lib / nW),
                     format("%.2f", leak_model / nW), format("%+.1f", e_leak),
                     format("%.2f", area_lib / um2), format("%.2f", area_model / um2),
                     format("%+.1f", e_area)});
      csv.add_row({tech.name, cell.name, format("%.3f", leak_lib / nW),
                   format("%.3f", leak_model / nW), format("%.2f", e_leak),
                   format("%.3f", area_lib / um2), format("%.3f", area_model / um2),
                   format("%.2f", e_area)});
    }
    table.add_separator();
  }

  printf("%s\n", table.to_string().c_str());
  printf("max |leakage error| = %.1f %% (paper: < 11 %%)\n", worst_leak);
  printf("max |area error|    = %.1f %% (paper: <  8 %%)\n", worst_area);

  pim::bench::export_csv(csv, "leakage_area_accuracy.csv");
  return 0;
}
