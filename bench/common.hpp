// Shared helpers for the bench binaries: cached calibrated fits (so a
// re-run of a bench does not repeat the simulation-heavy
// characterization) and output-directory handling. Coefficient caches and
// CSV exports land in pim::out_dir() — PIM_OUT_DIR or set_out_dir()
// when configured, else ./bench_out of the invoking directory.
#pragma once

#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "exec/engine.hpp"
#include "models/proposed.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sta/calibrated.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/paths.hpp"

namespace pim::bench {

inline std::string out_dir() { return ensure_out_dir(); }

/// Calibrated fit for `node`, cached under bench_out/.
inline TechnologyFit cached_fit(TechNode node) {
  CharacterizationOptions copt;
  copt.drives = {2, 4, 8, 16, 32, 64};
  const std::string path = out_dir() + "/coeffs_" + tech_node_name(node) + ".pimfit";
  return calibrated_fit(node, path, copt);
}

/// The trio nearly every bench binary opens with: the built-in
/// technology, its cached calibrated fit, and the proposed model bound to
/// both. The model copies the fit, so the struct is freely movable.
struct BenchModel {
  const Technology& tech;
  TechnologyFit fit;
  ProposedModel model;
};

/// Loads technology(node) + cached_fit(node) and binds the model.
inline BenchModel cached_model(TechNode node) {
  const Technology& tech = technology(node);
  TechnologyFit fit = cached_fit(node);
  ProposedModel model(tech, fit);
  return {tech, std::move(fit), std::move(model)};
}

/// The standard bench link context: length in mm, 100 ps input slew, and
/// the technology's default clock.
inline LinkContext link_context(const Technology& tech, double length_mm,
                                double input_slew_ps = 100.0) {
  LinkContext ctx;
  ctx.length = length_mm * 1e-3;
  ctx.input_slew = input_slew_ps * 1e-12;
  ctx.frequency = tech.clock_frequency;
  return ctx;
}

/// Writes a CSV into bench_out and notes it on stderr.
inline void export_csv(const CsvWriter& csv, const std::string& name) {
  const std::string path = out_dir() + "/" + name;
  csv.write_file(path);
  log_line(LogLevel::Warn, "wrote " + path);
}

/// RAII metrics collection for one bench binary: enables the registry on
/// construction and writes bench_out/<name>.metrics.json on destruction.
/// Pass collect=false (e.g. for overhead-sensitive timing benches) to keep
/// collection off unless the PIM_METRICS environment variable forces it on.
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string name, bool collect = true)
      : name_(std::move(name)),
        collect_(collect || std::getenv("PIM_METRICS") != nullptr),
        start_ns_(obs::now_ns()) {
    if (collect_) obs::set_enabled(true);
  }
  ~MetricsArtifact() {
    // Every bench run appends to the run ledger (same record shape as the
    // CLI), whether or not metric collection was on, so a bench_out
    // directory reads as a complete run history. PIM_LEDGER=off opts out.
    if (const char* env = std::getenv("PIM_LEDGER");
        env == nullptr || std::string(env) != "off") {
      obs::LedgerRecord record;
      record.command = "bench." + name_;
      record.cache_mode = cache::mode_name(cache::mode());
      record.threads = exec::threads();
      record.wall_ns = obs::now_ns() - start_ns_;
      obs::append_ledger_record(out_dir() + "/ledger.jsonl", record);
    }
    if (!collect_) return;
    const std::string path = out_dir() + "/" + name_ + ".metrics.json";
    obs::save_metrics_json(path);
    log_line(LogLevel::Warn, "wrote " + path);
  }
  MetricsArtifact(const MetricsArtifact&) = delete;
  MetricsArtifact& operator=(const MetricsArtifact&) = delete;

 private:
  std::string name_;
  bool collect_;
  int64_t start_ns_;
};

/// One point of a thread-scaling sweep.
struct ScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;  ///< wall time at 1 thread / wall time at `threads`
};

/// Runs `work` once per thread count (1, 2, 4, ... up to `max_threads`,
/// always including `max_threads` itself), timing each run and recording
/// bench.scaling.<name>.t<N>.seconds / .speedup gauges so the numbers land
/// in the bench's metrics.json artifact. The engine's parallel flows are
/// deterministic in their results, so every run computes the same answer —
/// only the wall time may differ. Restores the ambient thread setting
/// before returning.
inline std::vector<ScalingPoint> thread_scaling_sweep(
    const std::string& name, int max_threads, const std::function<void()>& work) {
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);
  std::vector<ScalingPoint> points;
  for (int t : counts) {
    exec::set_threads(t);
    const auto start = std::chrono::steady_clock::now();
    work();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ScalingPoint p;
    p.threads = t;
    p.seconds = seconds;
    p.speedup = points.empty() || seconds <= 0.0 ? 1.0
                                                 : points.front().seconds / seconds;
    points.push_back(p);
    const std::string prefix = "bench.scaling." + name + ".t" + std::to_string(t);
    obs::registry().gauge(prefix + ".seconds").set(p.seconds);
    obs::registry().gauge(prefix + ".speedup").set(p.speedup);
    log_line(LogLevel::Warn, name + " threads=" + std::to_string(t) + " " +
                                 std::to_string(seconds) + " s (x" +
                                 std::to_string(p.speedup) + ")");
  }
  exec::set_threads(0);
  return points;
}

// ---------------------------------------------------------------------------
// Bench-case registry (the pim_bench harness; docs/observability.md)
// ---------------------------------------------------------------------------

/// One measured scalar a bench case reports. `rel_tol` is the fractional
/// headroom bench_compare grants before calling a higher value a
/// regression; 0 marks a deterministic count that must not change at all.
struct BenchMetric {
  std::string name;  ///< e.g. "ns_per_eval"; reported as "<case>.<name>"
  double value = 0.0;
  std::string unit;     ///< "ns", "us", "count", ...
  double rel_tol = 0.5; ///< generous by default: the gate hunts real regressions
};

/// A registered benchmark: a closure returning its metrics for one
/// repetition. Smoke cases must be cheap (no characterization) — they run
/// in the tier-1 ctest pass.
struct BenchCase {
  std::string name;
  bool smoke = false;
  std::function<std::vector<BenchMetric>()> fn;
};

/// All registered cases, in registration order.
inline std::vector<BenchCase>& bench_registry() {
  static std::vector<BenchCase> cases;
  return cases;
}

/// File-scope registrar: `static BenchRegistrar r{{"name", true, fn}};`.
struct BenchRegistrar {
  explicit BenchRegistrar(BenchCase c) { bench_registry().push_back(std::move(c)); }
};

}  // namespace pim::bench
