// Shared helpers for the bench binaries: cached calibrated fits (so a
// re-run of a bench does not repeat the simulation-heavy
// characterization) and output-directory handling. Coefficient caches and
// CSV exports land in ./bench_out of the invoking directory.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sta/calibrated.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace pim::bench {

inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Calibrated fit for `node`, cached under bench_out/.
inline TechnologyFit cached_fit(TechNode node) {
  CharacterizationOptions copt;
  copt.drives = {2, 4, 8, 16, 32, 64};
  const std::string path = out_dir() + "/coeffs_" + tech_node_name(node) + ".pimfit";
  return calibrated_fit(node, path, copt);
}

/// Writes a CSV into bench_out and notes it on stderr.
inline void export_csv(const CsvWriter& csv, const std::string& name) {
  const std::string path = out_dir() + "/" + name;
  csv.write_file(path);
  log_line(LogLevel::Warn, "wrote " + path);
}

/// RAII metrics collection for one bench binary: enables the registry on
/// construction and writes bench_out/<name>.metrics.json on destruction.
/// Pass collect=false (e.g. for overhead-sensitive timing benches) to keep
/// collection off unless the PIM_METRICS environment variable forces it on.
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string name, bool collect = true)
      : name_(std::move(name)),
        collect_(collect || std::getenv("PIM_METRICS") != nullptr) {
    if (collect_) obs::set_enabled(true);
  }
  ~MetricsArtifact() {
    if (!collect_) return;
    const std::string path = out_dir() + "/" + name_ + ".metrics.json";
    obs::save_metrics_json(path);
    log_line(LogLevel::Warn, "wrote " + path);
  }
  MetricsArtifact(const MetricsArtifact&) = delete;
  MetricsArtifact& operator=(const MetricsArtifact&) = delete;

 private:
  std::string name_;
  bool collect_;
};

}  // namespace pim::bench
