// Shared helpers for the bench binaries: cached calibrated fits (so a
// re-run of a bench does not repeat the simulation-heavy
// characterization) and output-directory handling. Coefficient caches and
// CSV exports land in ./bench_out of the invoking directory.
#pragma once

#include <filesystem>
#include <string>

#include "sta/calibrated.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace pim::bench {

inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Calibrated fit for `node`, cached under bench_out/.
inline TechnologyFit cached_fit(TechNode node) {
  CharacterizationOptions copt;
  copt.drives = {2, 4, 8, 16, 32, 64};
  const std::string path = out_dir() + "/coeffs_" + tech_node_name(node) + ".pimfit";
  return calibrated_fit(node, path, copt);
}

/// Writes a CSV into bench_out and notes it on stderr.
inline void export_csv(const CsvWriter& csv, const std::string& name) {
  const std::string path = out_dir() + "/" + name;
  csv.write_file(path);
  log_line(LogLevel::Warn, "wrote " + path);
}

}  // namespace pim::bench
