// EXTENSION bench: parametric timing yield of a whole synthesized NoC
// under die-to-die process variation. One variation corner is drawn per
// die and applied to EVERY link; the die passes when its worst link still
// meets the per-hop budget. Connects the variation extension to the NoC
// synthesis flow: how much budget slack must synthesis keep for a target
// network yield?
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("noc_yield");
  const TechNode node = TechNode::N45;
  const auto& [tech, fit, model] = pim::bench::cached_model(node);

  const SocSpec spec = vproc_spec();
  printf("NoC timing yield under die-to-die variation — %s at %s @ %.2f GHz\n\n",
         spec.name.c_str(), tech.name.c_str(), unit::to_GHz(tech.clock_frequency));

  const NocSynthesisResult r = synthesize_noc(spec, model);
  printf("synthesized: %d links, %d routers, nominal worst link %.0f ps "
         "(budget %.0f ps)\n\n",
         r.metrics.num_links, r.metrics.num_routers, r.metrics.worst_link_delay / ps,
         r.delay_budget / ps);

  // Collect the live links once.
  struct LinkRef {
    double length;
    LinkDesign design;
    WireLayer layer;
  };
  std::vector<LinkRef> links;
  const NocArchitecture& arch = r.architecture;
  for (size_t i = 0; i < arch.edges().size(); ++i) {
    const NocEdge& e = arch.edges()[i];
    if (!e.alive || !e.impl.feasible) continue;
    links.push_back({arch.edge_length(static_cast<int>(i)), e.impl.design, e.impl.layer});
  }

  // Monte Carlo over dies.
  const int dies = 1000;
  Rng rng(2026);
  std::vector<double> worst_delays;
  worst_delays.reserve(dies);
  for (int die = 0; die < dies; ++die) {
    const VariationSample sample = sample_variation(rng, {});
    double worst = 0.0;
    for (const LinkRef& link : links) {
      LinkContext ctx = r.base_context;
      ctx.length = link.length;
      ctx.layer = link.layer;
      const double d = evaluate_with_variation(model, ctx, link.design, sample).delay;
      worst = std::max(worst, d);
    }
    worst_delays.push_back(worst);
  }
  std::sort(worst_delays.begin(), worst_delays.end());

  Table table({"budget (x nominal)", "budget (ps)", "network yield %"});
  CsvWriter csv({"budget_ratio", "budget_ps", "yield_pct"});
  const double nominal = r.metrics.worst_link_delay;
  for (double ratio : {1.0, 1.05, 1.1, 1.15, 1.2, 1.3}) {
    const double budget = ratio * nominal;
    const auto it = std::upper_bound(worst_delays.begin(), worst_delays.end(), budget);
    const double yield = 100.0 * (it - worst_delays.begin()) / dies;
    table.add_row({format("%.2f", ratio), format("%.0f", budget / ps),
                   format("%.1f", yield)});
    csv.add_row({format("%.2f", ratio), format("%.1f", budget / ps),
                 format("%.2f", yield)});
  }
  printf("%s\n", table.to_string().c_str());
  printf("p99 die worst-link delay: %.0f ps (%.1f %% over nominal) — the guard\n"
         "band NoC synthesis must reserve for 99 %% parametric timing yield\n",
         worst_delays[static_cast<size_t>(0.99 * dies)] / ps,
         100.0 * (worst_delays[static_cast<size_t>(0.99 * dies)] / nominal - 1.0));

  pim::bench::export_csv(csv, "noc_yield.csv");
  return 0;
}
