// EXTENSION bench (beyond the paper — see DESIGN.md): parametric yield
// of buffered links under die-to-die process variation.
//
// For a 5 mm 65 nm link implemented three ways (delay-optimal, balanced,
// staggered), runs a Monte-Carlo over device-strength / capacitance /
// wire-RC variation and reports the delay distribution and the yield
// achievable at a sweep of clock budgets — quantifying the guard band a
// system-level designer must carry on top of the nominal model numbers.
#include <cstdio>

#include "buffering/optimize.hpp"
#include "models/proposed.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("variation_yield");
  const auto& [tech, fit, model] = pim::bench::cached_model(TechNode::N65);
  LinkContext ctx = pim::bench::link_context(tech, 5.0);

  printf("Variation extension — 5 mm link at %s, 2000 Monte-Carlo corners\n\n",
         tech.name.c_str());

  struct Variant {
    const char* name;
    LinkDesign design;
  };
  std::vector<Variant> variants;
  {
    BufferingOptions fast;
    fast.kinds = {CellKind::Inverter};
    fast.weight = 1.0;
    variants.push_back({"delay-optimal", optimize_buffering(model, ctx, fast).design});
    BufferingOptions balanced = fast;
    balanced.weight = 0.5;
    variants.push_back({"balanced", optimize_buffering(model, ctx, balanced).design});
    LinkDesign staggered = variants[0].design;
    staggered.miller_factor = 0.0;
    variants.push_back({"staggered", staggered});
  }

  const int samples = 2000;
  Table table({"variant", "N", "drive", "nominal (ps)", "mean (ps)", "sigma (ps)",
               "p99 (ps)", "guardband p99"});
  CsvWriter csv({"variant", "repeaters", "drive", "nominal_ps", "mean_ps", "sigma_ps",
                 "p99_ps", "guardband_pct"});
  std::vector<MonteCarloResult> results;
  for (const Variant& v : variants) {
    const MonteCarloResult mc = monte_carlo_link(model, ctx, v.design, samples, 2026);
    const double p99 = mc.delay_quantile(0.99);
    const double guard = 100.0 * (p99 / mc.nominal_delay - 1.0);
    table.add_row({v.name, format("%d", v.design.num_repeaters),
                   format("D%d", v.design.drive), format("%.1f", mc.nominal_delay / ps),
                   format("%.1f", mc.mean_delay / ps), format("%.2f", mc.sigma_delay / ps),
                   format("%.1f", p99 / ps), format("%+.1f %%", guard)});
    csv.add_row({v.name, format("%d", v.design.num_repeaters),
                 format("%d", v.design.drive), format("%.2f", mc.nominal_delay / ps),
                 format("%.2f", mc.mean_delay / ps), format("%.3f", mc.sigma_delay / ps),
                 format("%.2f", p99 / ps), format("%.2f", guard)});
    results.push_back(mc);
  }
  printf("%s\n", table.to_string().c_str());

  // Yield vs. clock budget for the delay-optimal variant.
  const MonteCarloResult& mc = results[0];
  Table yield_table({"budget (ps)", "yield %"});
  CsvWriter yield_csv({"budget_ps", "yield_pct"});
  for (double f = 0.95; f <= 1.25; f += 0.05) {
    const double budget = f * mc.nominal_delay;
    yield_table.add_row({format("%.1f", budget / ps),
                         format("%.1f", 100.0 * mc.yield_at(budget))});
    yield_csv.add_row({format("%.2f", budget / ps),
                       format("%.2f", 100.0 * mc.yield_at(budget))});
  }
  printf("%s\n", yield_table.to_string().c_str());
  printf("(yield at the NOMINAL delay is ~50 %% — designing to the nominal model\n"
         " number without a guard band forfeits half the dies; the p99 column is\n"
         " the guard band needed for 99 %% parametric yield)\n\n");

  // Die-to-die vs within-die: independent per-repeater corners average
  // out along the chain (~1/sqrt(N)), so WID is far kinder than D2D.
  VariationSigmas only_drive;
  only_drive.device_cap = 0.0;
  only_drive.leakage = 0.0;
  only_drive.wire_res = 0.0;
  only_drive.wire_cap = 0.0;
  const LinkDesign& d0 = variants[0].design;
  const MonteCarloResult d2d = monte_carlo_link(model, ctx, d0, samples, 7, only_drive);
  const MonteCarloResult wid =
      monte_carlo_link_within_die(model, ctx, d0, samples, 7, only_drive);
  printf("device-strength variation only, %d-stage link:\n", d0.num_repeaters);
  printf("  die-to-die sigma %.2f ps | within-die sigma %.2f ps (%.1fx smaller,\n"
         "  ~sqrt(N) stage averaging — repeatered wires are naturally WID-robust)\n",
         d2d.sigma_delay / ps, wid.sigma_delay / ps, d2d.sigma_delay / wid.sigma_delay);

  // Thread-scaling of the Monte-Carlo yield flow. The result is
  // bit-identical at every thread count (per-sample RNG streams), so
  // only the wall time varies; seconds/speedup also land as
  // bench.scaling.* gauges in this bench's metrics.json artifact.
  printf("\nMonte-Carlo thread scaling (%d samples, identical results at any N):\n",
         4 * samples);
  Table scaling_table({"threads", "seconds", "speedup"});
  CsvWriter scaling_csv({"threads", "seconds", "speedup"});
  const auto points = pim::bench::thread_scaling_sweep("mc_yield", 8, [&] {
    (void)monte_carlo_link(model, ctx, d0, 4 * samples, 2026);
  });
  for (const auto& p : points) {
    scaling_table.add_row({format("%d", p.threads), format("%.3f", p.seconds),
                           format("%.2fx", p.speedup)});
    scaling_csv.add_row({format("%d", p.threads), format("%.4f", p.seconds),
                         format("%.3f", p.speedup)});
  }
  printf("%s\n", scaling_table.to_string().c_str());

  pim::bench::export_csv(csv, "variation_guardband.csv");
  pim::bench::export_csv(yield_csv, "variation_yield.csv");
  pim::bench::export_csv(scaling_csv, "variation_scaling.csv");
  return 0;
}
