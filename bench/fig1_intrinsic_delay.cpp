// Reproduces paper Fig. 1: the repeater intrinsic delay (zero-load
// intercept of the delay-vs-load line) as a function of input slew, for
// several inverter sizes — demonstrating that it is essentially
// independent of size and well captured by a quadratic in slew.
//
// Output: one row per input slew with a column per inverter size, the
// pooled quadratic fit, and its R^2. Also exported as CSV.
#include <cstdio>

#include "charlib/characterize.hpp"
#include "numeric/regression.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include "common.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  pim::bench::MetricsArtifact metrics("fig1_intrinsic_delay");
  const Technology& tech = technology(TechNode::N65);
  const std::vector<int> drives = {8, 16, 32, 64};
  CharacterizationOptions opt;
  opt.slew_axis = {10 * ps, 50 * ps, 100 * ps, 200 * ps, 300 * ps, 400 * ps, 500 * ps};
  opt.fanout_axis = {2.0, 6.0, 12.0, 25.0};

  printf("Fig. 1 — repeater intrinsic delay vs. input slew and inverter size (%s)\n\n",
         tech.name.c_str());

  // Per size: zero-load intercept of delay vs. load at each slew.
  std::vector<Vector> intrinsic(drives.size());
  Vector pooled_slew, pooled_val;
  for (size_t d = 0; d < drives.size(); ++d) {
    const RepeaterCell cell = characterize_cell(tech, CellKind::Inverter, drives[d], opt);
    for (size_t i = 0; i < opt.slew_axis.size(); ++i) {
      Vector delays(cell.fall.load_axis.size());
      for (size_t j = 0; j < delays.size(); ++j) delays[j] = cell.fall.delay(i, j);
      const LinearFit line = fit_linear(cell.fall.load_axis, delays);
      intrinsic[d].push_back(line.intercept);
      pooled_slew.push_back(opt.slew_axis[i]);
      pooled_val.push_back(line.intercept);
    }
  }
  const PolynomialFit quad = fit_polynomial(pooled_slew, pooled_val, 2);

  std::vector<std::string> header = {"slew (ps)"};
  for (int d : drives) header.push_back(format("INVD%d (ps)", d));
  header.push_back("quad fit (ps)");
  Table table(header);
  CsvWriter csv(header);
  for (size_t i = 0; i < opt.slew_axis.size(); ++i) {
    std::vector<std::string> row = {format("%.0f", opt.slew_axis[i] / ps)};
    for (size_t d = 0; d < drives.size(); ++d)
      row.push_back(format("%.2f", intrinsic[d][i] / ps));
    row.push_back(format("%.2f", quad.eval(opt.slew_axis[i]) / ps));
    table.add_row(row);
    csv.add_row(row);
  }
  printf("%s\n", table.to_string().c_str());
  printf("quadratic fit: i(s) = %.3g + %.3g*s + %.3g*s^2  (R^2 = %.4f)\n",
         quad.coeff[0], quad.coeff[1], quad.coeff[2], quad.r_squared);

  // Size-independence figure of merit: worst spread across sizes.
  double worst_spread = 0.0;
  for (size_t i = 0; i < opt.slew_axis.size(); ++i) {
    double lo = intrinsic[0][i], hi = intrinsic[0][i];
    for (size_t d = 1; d < drives.size(); ++d) {
      lo = std::min(lo, intrinsic[d][i]);
      hi = std::max(hi, intrinsic[d][i]);
    }
    worst_spread = std::max(worst_spread, (hi - lo) / hi);
  }
  printf("worst across-size spread of the intrinsic delay: %.2f %%\n", 100.0 * worst_spread);
  printf("(paper Fig. 1: intrinsic delay essentially independent of repeater size,\n"
         " strongly dependent on input slew, captured by quadratic regression)\n");

  pim::bench::export_csv(csv, "fig1_intrinsic_delay.csv");
  return 0;
}
