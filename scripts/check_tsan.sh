#!/usr/bin/env bash
# Builds a dedicated -DPIM_SANITIZE=thread tree (ThreadSanitizer) and
# runs the concurrency-sensitive test binaries under it: the pim::exec
# engine suite, the fault-injection matrix (which exercises the
# parallel Monte-Carlo and characterization paths), the result-cache
# store (concurrent get/put from exec workers), the deadline /
# cancellation suite (stop polls racing worker chunks), the serving
# daemon (accept/reader/worker threads racing admission, flush, and
# drain), the batched transient engine (lanes sharing one read-only
# CompiledCircuit), and the charlib sweep (exec workers running 2-lane
# batches off one shared plan at several thread counts). Any data race
# fails the script. Uses its own build directory so the main build/
# tree and the ASan tree stay untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -G Ninja -DPIM_SANITIZE=thread >/dev/null
cmake --build build-tsan --target test_exec test_faults test_cache test_deadline test_serve test_spice test_charlib >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

for t in test_exec test_faults test_cache test_deadline test_serve test_spice test_charlib; do
  echo "=== tsan: $t ==="
  ./build-tsan/tests/"$t"
done

echo "check_tsan: OK"
