#!/usr/bin/env bash
# End-to-end serving check (docs/serving.md): boots the real pimd on a
# Unix socket against a scratch cache directory, runs a mixed request
# stream (techfile + a heterogeneous batch + a repeat evaluate) cold and
# then warm through the `pim serve` client, and requires
#   - warm daemon responses byte-identical to the same lines executed
#     in-process (`pim serve --local`) against the same cache, at
#     --threads 1 and --threads 4 — the codec-sharing contract,
#   - the daemon's stats to report the expected cache-hit growth across
#     the warm pass (the process-resident memos plus the store),
#   - a graceful SIGTERM drain: exit 0 and the socket file unlinked.
# First run characterizes 65nm (about a minute); later runs reuse
# nothing — the cache directory is scratch by design, so the cold pass
# stays cold.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build --target pimd pim_cli >/dev/null

workdir=$(mktemp -d)
pimd_pid=""
cleanup() {
  [[ -n "$pimd_pid" ]] && kill "$pimd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

cache="$workdir/cache"
sock="$workdir/pimd.sock"
pim=build/tools/pim

requests="$workdir/requests.jsonl"
cat > "$requests" <<'EOF'
{"op":"techfile","id":1,"tech":"65nm"}
{"op":"batch","id":2,"items":[{"op":"evaluate","link":{"tech":"65nm","length_mm":3.0}},{"op":"buffer","link":{"tech":"65nm","length_mm":5.0}},{"op":"yield","link":{"tech":"65nm","length_mm":5.0},"samples":400,"seed":2026}]}
{"op":"evaluate","id":3,"link":{"tech":"65nm","length_mm":3.0}}
EOF

echo "=== pimd: boot (scratch cache) ==="
build/tools/pimd --socket "$sock" --workers 1 --cache rw --cache-dir "$cache" \
  > "$workdir/pimd.stdout" 2> "$workdir/pimd.stderr" &
pimd_pid=$!
for _ in $(seq 100); do
  [[ -S "$sock" ]] && break
  if ! kill -0 "$pimd_pid" 2>/dev/null; then
    cat "$workdir/pimd.stderr" >&2
    echo "check_serve: pimd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "check_serve: pimd socket never appeared" >&2; exit 1; }

stats() { echo '{"op":"stats"}' | "$pim" serve --socket "$sock"; }
hits() { stats | jq '.result.cache.store_hits + .result.cache.resident_hits'; }

echo "=== cold pass (characterizes 65nm, populates the cache) ==="
"$pim" serve --socket "$sock" < "$requests" > "$workdir/cold.out"
hits_cold=$(hits)

echo "=== warm pass ==="
"$pim" serve --socket "$sock" < "$requests" > "$workdir/warm.out"
hits_warm=$(hits)

# Every flow in the warm stream must come back from a cache tier: the
# batch's evaluate / buffer / yield (the buffer flow counts its fit
# reuse and its stored search separately) plus the repeat evaluate. The
# exact growth is pinned — a silently colder (or hotter) warm pass is a
# caching regression, not noise.
expected_hit_growth=5
hit_growth=$((hits_warm - hits_cold))
echo "cache hits: cold $hits_cold, warm $hits_warm (+$hit_growth)"
if [[ "$hit_growth" -ne "$expected_hit_growth" ]]; then
  echo "check_serve: warm pass grew $hit_growth cache hits, expected $expected_hit_growth" >&2
  exit 1
fi

echo "=== byte-identity: warm daemon vs in-process, --threads 1 and 4 ==="
for threads in 1 4; do
  "$pim" serve --local --cache rw --cache-dir "$cache" --threads "$threads" \
    < "$requests" > "$workdir/local$threads.out"
  if ! cmp -s "$workdir/warm.out" "$workdir/local$threads.out"; then
    echo "check_serve: warm daemon responses differ from --local --threads $threads" >&2
    diff "$workdir/warm.out" "$workdir/local$threads.out" | head >&2 || true
    exit 1
  fi
done
echo "byte-identical"

echo "=== graceful drain (SIGTERM) ==="
kill -TERM "$pimd_pid"
drain_rc=0
wait "$pimd_pid" || drain_rc=$?
pimd_pid=""
if [[ "$drain_rc" -ne 0 ]]; then
  cat "$workdir/pimd.stderr" >&2
  echo "check_serve: pimd exited $drain_rc on SIGTERM" >&2
  exit 1
fi
if [[ -e "$sock" ]]; then
  echo "check_serve: pimd left its socket file behind" >&2
  exit 1
fi

echo "check_serve: OK"
