#!/usr/bin/env bash
# Smoke-checks the process-corner layer end to end through the CLI
# (docs/corners.md): delays must order SS >= nominal >= FF (slow devices
# can't be faster than nominal, fast ones can't be slower), `--corner
# nominal` must be byte-identical to not passing the flag, and the
# multi-corner signoff must report the full builtin set with its
# dominating corner. Uses a scratch cache so ~/.cache/pim is untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Printed delay of `pim evaluate` at one corner ("delay 106.9 ps" -> 106.9).
eval_delay() {
  (cd build && ./tools/pim evaluate 45nm --length 2 --corner "$1" \
      --cache-dir "$workdir/cache" --log-level off) |
    sed -n 's/.*delay \([0-9.]*\) ps.*/\1/p' | head -n 1
}

echo "=== SS >= nominal >= FF delay ordering ==="
ss=$(eval_delay ss)
nominal=$(eval_delay nominal)
ff=$(eval_delay ff)
echo "check_corners: delay ss=${ss} ps, nominal=${nominal} ps, ff=${ff} ps"
awk -v ss="$ss" -v nom="$nominal" -v ff="$ff" 'BEGIN {
  if (!(ss >= nom && nom >= ff)) {
    print "check_corners: corner delays are not monotone (ss >= nominal >= ff)" > "/dev/stderr"
    exit 1
  }
}'

echo "=== --corner nominal is byte-identical to no corner ==="
(cd build && ./tools/pim evaluate 45nm --length 2 \
    --cache-dir "$workdir/cache" --log-level off) > "$workdir/plain.txt"
(cd build && ./tools/pim evaluate 45nm --length 2 --corner nominal \
    --cache-dir "$workdir/cache" --log-level off) > "$workdir/nominal.txt"
if ! cmp -s "$workdir/plain.txt" "$workdir/nominal.txt"; then
  echo "check_corners: --corner nominal output differs from the default" >&2
  diff "$workdir/plain.txt" "$workdir/nominal.txt" >&2 || true
  exit 1
fi

echo "=== multi-corner signoff reports every corner + the worst ==="
(cd build && ./tools/pim signoff 45nm --length 2 --corners all \
    --cache-dir "$workdir/cache" --log-level off) > "$workdir/signoff.txt"
for corner in nominal ss ff sf fs; do
  grep -q "^  ${corner} " "$workdir/signoff.txt" || {
    echo "check_corners: signoff table is missing corner '${corner}'" >&2
    cat "$workdir/signoff.txt" >&2
    exit 1
  }
done
grep -q "^worst corner " "$workdir/signoff.txt" || {
  echo "check_corners: signoff did not name a worst corner" >&2
  exit 1
}

echo "check_corners: OK"
