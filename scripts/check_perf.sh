#!/usr/bin/env bash
# Perf regression gate: runs the pim_bench harness and compares the fresh
# record against the latest committed BENCH_*.json at the repo root via
# bench_compare (per-metric tolerances; non-zero exit on regression).
# Run from anywhere; uses the build/bench_out coefficient cache so repeat
# runs skip characterization. See docs/observability.md.
set -euo pipefail
cd "$(dirname "$0")/.."

# Reuse the existing build tree whatever its generator; -G here would
# conflict with a tree configured differently.
cmake -B build >/dev/null
cmake --build build >/dev/null

baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [[ -z "$baseline" ]]; then
  echo "check_perf: no BENCH_*.json baseline at the repo root" >&2
  echo "check_perf: create one with: (cd build && ./tools/pim_bench --out ../BENCH_$(date -u +%F).json)" >&2
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "=== pim_bench (fresh run) ==="
mkdir -p build/bench_out  # shared coefficient cache location
(cd build && ./tools/pim_bench --reps 5 --out "$workdir/fresh.json")

echo "=== bench_compare against $baseline ==="
./build/tools/bench_compare "$baseline" "$workdir/fresh.json"

# Speedup floors from the fresh run (docs/kernels.md). These are ratios
# of two metrics measured in the same process, so unlike the absolute
# medians above they are stable across machines: the batched transient
# engine must keep charlib sweeps >= 2x over the scalar reference
# engine, and the Monte-Carlo fast path >= 3x over per-sample model
# construction.
echo "=== speedup floors ==="
python3 - "$workdir/fresh.json" <<'EOF'
import json, sys

metrics = json.load(open(sys.argv[1]))["metrics"]
floors = [
    ("transient_kernel.ms_per_sweep_reference",
     "transient_kernel.ms_per_sweep_batched", 2.0, "charlib sweep"),
    ("mc_batch.us_per_sample_modelpath",
     "mc_batch.us_per_sample_fastpath", 3.0, "MC sample evaluation"),
]
failed = False
for slow, fast, floor, label in floors:
    ratio = metrics[slow]["median"] / metrics[fast]["median"]
    status = "ok" if ratio >= floor else "FAIL"
    if ratio < floor:
        failed = True
    print(f"  {label}: {ratio:.2f}x (floor {floor}x) {status}")
if failed:
    sys.exit("check_perf: speedup below floor")
EOF

echo "check_perf: OK"
