#!/usr/bin/env bash
# Incremental recomputation end to end (docs/caching.md): warm a scratch
# cache across two corners of an on-disk tech file, retune ONE corner, and
# prove the dirty cone is exactly that corner's:
#   - `pim cache diff` must report the edit as partial (dirty > 0 AND
#     reuse > 0, via the cache.dirty.keys / cache.reuse.keys metrics);
#   - `pim cache invalidate` must evict only the cone;
#   - the surviving corner's rerun must stay warm — < 10% of its cold
#     wall time by run-ledger wall_ns — and byte-identical to cold;
#   - the retuned corner's rerun must recompute against the new factors,
#     after which a second diff sees a fully clean cache.
# The scratch cache and tech file live in a temp dir; ~/.cache/pim is
# never touched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cachedir="$workdir/cache"
outdir="$workdir/out"
tech="$workdir/edit.tech"

# A 45nm descriptor with a file-defined corner set: nominal plus one
# derated corner we can retune without touching nominal's inputs. The
# corners block nests inside the top-level technology block, so splice it
# in before the closing brace.
(cd build && ./tools/pim techfile 45nm --log-level off) |
  head -n -1 > "$tech"
cat >> "$tech" <<'EOF'
  corners {
    nominal {
    }
    slow {
      nmos_strength 0.9
      pmos_strength 0.9
    }
  }
}
EOF

run_yield() { # $1 = corner, $2 = output file
  (cd build && ./tools/pim yield "$tech" --corner "$1" --length 5 \
      --samples 10000 --cache-dir "$cachedir" --out-dir "$outdir" \
      --log-level off) > "$2"
}

# wall_ns of the most recent run, from the run ledger.
last_wall_ns() {
  tail -n 1 "$outdir/ledger.jsonl" | grep -o '"wall_ns": *[0-9]*' | grep -o '[0-9]*$'
}

# value of an integer counter in a --profile metrics dump.
metric() { # $1 = file, $2 = metric name
  grep -o "\"$2\": *[0-9]*" "$1" | head -n 1 | grep -o '[0-9]*$'
}

echo "=== cold runs (empty cache, nominal + slow corners) ==="
run_yield nominal "$workdir/cold_nominal.txt"
cold_nominal_ns=$(last_wall_ns)
run_yield slow "$workdir/cold_slow.txt"
echo "check_incremental: cold nominal $((cold_nominal_ns / 1000000)) ms"

echo "=== single-corner tweak (retune 'slow', leave nominal alone) ==="
sed -i 's/nmos_strength 0\.9$/nmos_strength 0.85/' "$tech"
if ! grep -q 'nmos_strength 0.85' "$tech"; then
  echo "check_incremental: tech-file edit did not land" >&2
  exit 1
fi

(cd build && ./tools/pim cache diff "$tech" --cache-dir "$cachedir" \
    --out-dir "$outdir" --log-level off \
    --profile "$workdir/diff.json") > "$workdir/diff.txt"
cat "$workdir/diff.txt"
dirty=$(metric "$workdir/diff.json" "cache.dirty.keys")
reuse=$(metric "$workdir/diff.json" "cache.reuse.keys")
if [[ -z "$dirty" || "$dirty" -eq 0 ]]; then
  echo "check_incremental: corner retune marked nothing dirty" >&2
  exit 1
fi
if [[ -z "$reuse" || "$reuse" -eq 0 ]]; then
  echo "check_incremental: corner retune left nothing reusable — cone is not minimal" >&2
  exit 1
fi
echo "check_incremental: diff sees $dirty dirty / $reuse reusable"

(cd build && ./tools/pim cache invalidate "$tech" --cache-dir "$cachedir" \
    --out-dir "$outdir" --log-level off) > "$workdir/invalidate.txt"
grep -q "evicted" "$workdir/invalidate.txt" || {
  echo "check_incremental: invalidate evicted nothing" >&2
  exit 1
}

echo "=== incremental rerun (nominal cone must have survived) ==="
run_yield nominal "$workdir/warm_nominal.txt"
warm_nominal_ns=$(last_wall_ns)
if ! cmp -s "$workdir/cold_nominal.txt" "$workdir/warm_nominal.txt"; then
  echo "check_incremental: nominal output changed after an unrelated corner retune" >&2
  diff "$workdir/cold_nominal.txt" "$workdir/warm_nominal.txt" >&2 || true
  exit 1
fi
echo "check_incremental: warm nominal $((warm_nominal_ns / 1000000)) ms"
if (( warm_nominal_ns * 10 >= cold_nominal_ns )); then
  echo "check_incremental: post-invalidate nominal rerun (${warm_nominal_ns} ns)" \
       "not under 10% of cold (${cold_nominal_ns} ns) — invalidation evicted the reusable cone" >&2
  exit 1
fi

echo "=== retuned corner recomputes, then the cache is clean ==="
run_yield slow "$workdir/warm_slow.txt"
if cmp -s "$workdir/cold_slow.txt" "$workdir/warm_slow.txt"; then
  echo "check_incremental: slow-corner output unchanged by the retune — stale result served" >&2
  exit 1
fi
(cd build && ./tools/pim cache diff "$tech" --cache-dir "$cachedir" \
    --out-dir "$outdir" --log-level off) > "$workdir/clean.txt"
grep -q "0 dirty" "$workdir/clean.txt" || {
  echo "check_incremental: cache still dirty after recomputing the cone" >&2
  cat "$workdir/clean.txt" >&2
  exit 1
}

echo "check_incremental: OK"
