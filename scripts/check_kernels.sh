#!/usr/bin/env bash
# SIMD determinism gate (docs/kernels.md): builds the tree twice, with
# -DPIM_SIMD=ON and OFF, and asserts the full flow is byte-identical
# between the two — the flag may only toggle vectorization *hints* in
# the SoA device kernels, never arithmetic. Each variant fits its own
# coefficients with the result cache off (so neither can shortcut
# through the other's cached characterization), then `pim evaluate` and
# `pim yield` outputs are compared across both variants at --threads 1
# and 4, which also re-checks the thread-count determinism contract
# through the batched transient engine.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

for simd in ON OFF; do
  echo "=== build -DPIM_SIMD=$simd ==="
  cmake -B "build-simd-$simd" -G Ninja -DPIM_SIMD=$simd >/dev/null
  cmake --build "build-simd-$simd" --target pim >/dev/null
done

common=(--cache off --out-dir "$workdir/out" --ledger off --log-level warn)

for simd in ON OFF; do
  pim="./build-simd-$simd/tools/pim"
  coeffs="$workdir/coeffs-$simd.pimfit"
  echo "=== pim fit (SIMD=$simd) ==="
  "$pim" fit 45nm --coeffs "$coeffs" --threads 4 "${common[@]}" >/dev/null
  for threads in 1 4; do
    "$pim" evaluate 45nm --length 5 --coeffs "$coeffs" --threads $threads \
      "${common[@]}" > "$workdir/evaluate-$simd-$threads.txt"
    "$pim" yield 45nm --length 3 --samples 200 --coeffs "$coeffs" \
      --threads $threads "${common[@]}" > "$workdir/yield-$simd-$threads.txt"
  done
done

echo "=== compare ==="
# Fitted coefficients must match byte-for-byte: the whole transistor-level
# characterization ran through the kernels in both variants.
cmp "$workdir/coeffs-ON.pimfit" "$workdir/coeffs-OFF.pimfit" \
  || { echo "check_kernels: coefficient files differ between SIMD variants"; exit 1; }

for cmd in evaluate yield; do
  ref="$workdir/$cmd-ON-1.txt"
  for variant in ON-4 OFF-1 OFF-4; do
    cmp "$ref" "$workdir/$cmd-$variant.txt" \
      || { echo "check_kernels: pim $cmd output differs ($variant vs ON-1)"; exit 1; }
  done
done

echo "check_kernels: OK (SIMD ON/OFF byte-identical at --threads 1 and 4)"
