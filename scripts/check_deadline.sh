#!/usr/bin/env bash
# Validates the deadline / cancellation contract end to end
# (docs/robustness.md "Deadlines & cancellation"):
#   1. a generous --deadline-ms budget must be a no-op: byte-identical
#      stdout to the same run with no deadline at all;
#   2. a tight budget must stop the run early through the documented
#      contract — exit code 5, a partial estimate with partial=true on
#      stdout, and a flushed ledger record carrying exit_code 5.
# Uses a scratch cache + out dir, so the user's ~/.cache/pim is never
# touched. The first run characterizes 45nm cold (the slow part); the
# tight run reuses that cached fit so the clock expires inside the
# Monte-Carlo loop, not during calibration.
set -euo pipefail
cd "$(dirname "$0")/.."

# No -G: reuse whatever generator build/ was configured with.
cmake -B build >/dev/null
cmake --build build >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cachedir="$workdir/cache"

run_yield() {  # run_yield <out-file> [extra flags...]
  local out="$1"; shift
  (cd build && ./tools/pim yield 45nm --length 5 --samples 20000 \
      --cache-dir "$cachedir" --log-level off "$@") > "$out"
}

echo "=== no-deadline baseline (cold cache) ==="
run_yield "$workdir/nodeadline.txt"

echo "=== generous budget (must be a byte-identical no-op) ==="
run_yield "$workdir/generous.txt" --deadline-ms 3600000
if ! cmp -s "$workdir/nodeadline.txt" "$workdir/generous.txt"; then
  echo "check_deadline: generous budget changed the output" >&2
  diff "$workdir/nodeadline.txt" "$workdir/generous.txt" >&2 || true
  exit 1
fi

echo "=== tight budget (must exit 5 with a flushed partial result) ==="
# 2M samples take far longer than 300 ms, but the budget comfortably
# covers loading the cached fit — so the stop lands mid-Monte-Carlo and
# some samples have completed: a partial estimate, not a zero-progress
# error.
set +e
(cd build && ./tools/pim yield 45nm --length 5 --samples 2000000 \
    --cache-dir "$cachedir" --out-dir "$workdir/out" --log-level off \
    --deadline-ms 300) > "$workdir/tight.txt" 2>&1
code=$?
set -e
if [[ "$code" -ne 5 ]]; then
  echo "check_deadline: tight budget exited $code, want 5" >&2
  cat "$workdir/tight.txt" >&2
  exit 1
fi
if ! grep -q 'partial=true' "$workdir/tight.txt"; then
  echo "check_deadline: tight-budget output carries no partial=true line" >&2
  cat "$workdir/tight.txt" >&2
  exit 1
fi

ledger="$workdir/out/ledger.jsonl"
if [[ ! -s "$ledger" ]]; then
  echo "check_deadline: no ledger record flushed for the stopped run" >&2
  exit 1
fi
if ! grep -q '"exit_code": 5' "$ledger"; then
  echo "check_deadline: ledger record does not carry exit_code 5" >&2
  cat "$ledger" >&2
  exit 1
fi

echo "check_deadline: OK"
