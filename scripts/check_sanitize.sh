#!/usr/bin/env bash
# Builds a dedicated -DPIM_SANITIZE=ON tree (ASan + UBSan) and runs the
# robustness-sensitive test binaries under it: the fault-injection
# matrix, the numeric kernels, and the util layer. Memory errors or UB
# anywhere in those paths fail the script. Uses its own build directory
# so the main build/ tree stays sanitizer-free.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-sanitize -G Ninja -DPIM_SANITIZE=ON >/dev/null
cmake --build build-sanitize --target test_faults test_numeric test_util test_cache >/dev/null

# halt_on_error keeps failures loud; detect_leaks stays on by default.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

for t in test_faults test_numeric test_util test_cache; do
  echo "=== sanitize: $t ==="
  ./build-sanitize/tests/"$t"
done

echo "check_sanitize: OK"
