#!/usr/bin/env bash
# Builds everything, runs the full test suite, then regenerates every
# paper table/figure (writing bench_out/ CSVs). First run characterizes
# all six technologies (several minutes); later runs reuse the
# coefficient caches.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

cd build
for b in fig1_intrinsic_delay table1_coefficients table2_accuracy \
         table3_noc_synthesis buffering_tradeoff leakage_area_accuracy \
         ablation_ingredients timer_comparison mesh_vs_synthesis \
         noise_analysis buswidth_exploration tapered_buffering \
         variation_yield noc_yield sizing_for_yield cache_effect; do
  echo "=== bench/$b ==="
  ./bench/"$b"
done
./bench/model_runtime --benchmark_min_time=0.1
echo "=== bench/serving_throughput ==="
./bench/serving_throughput

cd ..
scripts/check_metrics.sh
scripts/check_cache.sh
scripts/check_incremental.sh
scripts/check_deadline.sh
scripts/check_corners.sh
scripts/check_serve.sh
scripts/check_kernels.sh
scripts/check_perf.sh
scripts/check_sanitize.sh
scripts/check_tsan.sh
