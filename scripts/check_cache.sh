#!/usr/bin/env bash
# Validates the content-addressed result cache end to end (docs/caching.md):
# a cold `pim yield` run against an empty scratch cache, a warm re-run that
# must be faster AND byte-identical, and a corrupted-entry run that must
# fail open (recompute, exit 0, same bytes). The scratch cache lives in a
# temp dir, so the user's ~/.cache/pim is never touched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cachedir="$workdir/cache"

# No --coeffs file on purpose: the characterization + fit is the expensive
# cold work the cache is supposed to absorb, alongside the Monte-Carlo.
run_yield() {
  (cd build && ./tools/pim yield 45nm --length 5 --samples 20000 \
      --cache-dir "$cachedir" --log-level off) > "$1"
}

now_ms() { date +%s%3N; }

echo "=== cold run (empty cache) ==="
t0=$(now_ms); run_yield "$workdir/cold.txt"; t1=$(now_ms)
cold_ms=$((t1 - t0))

entries=$(find "$cachedir" -name '*.pimcache' | wc -l)
if [[ "$entries" -eq 0 ]]; then
  echo "check_cache: cold run registered no cache entries under $cachedir" >&2
  exit 1
fi

echo "=== warm run (populated cache) ==="
t0=$(now_ms); run_yield "$workdir/warm.txt"; t1=$(now_ms)
warm_ms=$((t1 - t0))

if ! cmp -s "$workdir/cold.txt" "$workdir/warm.txt"; then
  echo "check_cache: warm output differs from cold — cache is not transparent" >&2
  diff "$workdir/cold.txt" "$workdir/warm.txt" >&2 || true
  exit 1
fi
echo "check_cache: cold ${cold_ms} ms, warm ${warm_ms} ms"
if [[ "$warm_ms" -ge "$cold_ms" ]]; then
  echo "check_cache: warm run (${warm_ms} ms) not faster than cold (${cold_ms} ms)" >&2
  exit 1
fi

echo "=== corrupted-entry run (must fail open) ==="
# Garble one Monte-Carlo entry behind the store's back; the run must
# recompute it silently (exit 0) and still print the same bytes.
corrupt=$(find "$cachedir/yield" -name '*.pimcache' | head -n 1)
if [[ -z "$corrupt" ]]; then
  echo "check_cache: no yield entry found to corrupt under $cachedir" >&2
  exit 1
fi
echo "garbage, not a cache entry" > "$corrupt"
run_yield "$workdir/corrupt.txt"
if ! cmp -s "$workdir/cold.txt" "$workdir/corrupt.txt"; then
  echo "check_cache: output after corruption differs from cold run" >&2
  exit 1
fi

echo "check_cache: OK"
