#!/usr/bin/env bash
# Validates the observability pipeline end to end: builds the tree, runs
# an instrumented `pim evaluate` (plus a bench with a metrics artifact),
# and fails on malformed JSON or missing metric keys. Uses the bench_out
# coefficient cache so repeat runs skip characterization.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# json_ok FILE -- fail unless FILE parses as JSON.
json_ok() {
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null || {
      echo "check_metrics: malformed JSON in $1" >&2
      return 1
    }
  else
    # Crude fallback: non-empty and starts with an object brace.
    [[ -s "$1" ]] && head -c1 "$1" | grep -q '{' || {
      echo "check_metrics: $1 missing or not JSON" >&2
      return 1
    }
  fi
}

# has_key FILE KEY -- fail unless the metric name appears in the report.
has_key() {
  grep -q "\"$2\"" "$1" || {
    echo "check_metrics: $1 lacks required key '$2'" >&2
    return 1
  }
}

mkdir -p build/bench_out  # shared coefficient cache location

echo "=== pim evaluate --profile/--trace ==="
(cd build && ./tools/pim evaluate 45nm --length 5 \
    --coeffs bench_out/coeffs_45nm.pimfit \
    --profile "$workdir/evaluate.metrics.json" \
    --trace "$workdir/evaluate.trace.json" --log-level warn)
json_ok "$workdir/evaluate.metrics.json"
json_ok "$workdir/evaluate.trace.json"
has_key "$workdir/evaluate.metrics.json" "schema"
has_key "$workdir/evaluate.metrics.json" "cli.evaluate"
has_key "$workdir/evaluate.metrics.json" "model.link.evaluations"
has_key "$workdir/evaluate.trace.json" "traceEvents"
# A fresh characterization also proves the spice counters; with a warm
# coeffs cache only the model counters are exercised, which is fine.
if ! grep -q '"spice.transient.runs"' "$workdir/evaluate.metrics.json" &&
   ! grep -q '"model.link.evaluations"' "$workdir/evaluate.metrics.json"; then
  echo "check_metrics: neither spice.* nor model.* counters present" >&2
  exit 1
fi

echo "=== bench metrics artifact ==="
# variation_yield always runs its Monte-Carlo, so its counters are
# present even when the coefficient cache skips characterization.
(cd build && ./bench/variation_yield >/dev/null)
artifact=build/bench_out/variation_yield.metrics.json
json_ok "$artifact"
has_key "$artifact" "schema"
has_key "$artifact" "variation.sample.count"
has_key "$artifact" "model.link.evaluations"

echo "check_metrics: OK"
