// Quickstart: the whole modeling flow on one global link.
//
//   1. Build the calibrated coefficient set for 65 nm (characterization
//      runs transistor-level simulations; the result is cached in
//      ./pim_coeffs_65nm.pimfit so the second run is instant).
//   2. Ask the proposed model about a 5 mm worst-case-coupled link.
//   3. Let the buffering optimizer pick repeaters under a delay budget.
//   4. Cross-check the model's prediction against golden sign-off.
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "buffering/optimize.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "sta/signoff.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

using namespace pim;
using namespace pim::unit;

int main() {
  set_log_level(LogLevel::Info);

  // 1. Calibrated coefficients (cached across runs).
  const Technology& tech = technology(TechNode::N65);
  const TechnologyFit fit = calibrated_fit(TechNode::N65, "pim_coeffs_65nm.pimfit");
  printf("technology %s: vdd=%.2f V, clock=%.2f GHz\n", tech.name.c_str(), tech.vdd,
         unit::to_GHz(tech.clock_frequency));
  printf("composition calibration (coupled): kappa_c=%.3f kappa_c1=%.3f kappa_w=%.3f\n"
         "(worst training error %.1f %%)\n\n",
         fit.comp_coupled.kappa_c, fit.comp_coupled.kappa_c1, fit.comp_coupled.kappa_w,
         100 * fit.comp_coupled.worst_rel_error);

  // 2. A 5 mm global link, minimum pitch, worst-case neighbors.
  const ProposedModel model(tech, fit);
  LinkContext ctx;
  ctx.length = 5 * mm;
  ctx.input_slew = 100 * ps;
  ctx.frequency = tech.clock_frequency;
  ctx.activity = 0.15;

  // 3. Buffering under a half-cycle delay budget, balanced objective.
  BufferingOptions bopt;
  bopt.weight = 0.6;
  bopt.max_delay = 0.5 / tech.clock_frequency;
  const BufferingResult best = optimize_buffering(model, ctx, bopt);
  if (!best.feasible) {
    printf("no buffering meets the %.0f ps budget — wire must be split\n",
           unit::to_ps(bopt.max_delay));
    return 1;
  }
  printf("chosen buffering: %d x %sD%d, miller=%.2f (searched %ld candidates)\n",
         best.design.num_repeaters, cell_kind_name(best.design.kind).c_str(),
         best.design.drive, best.design.miller_factor, best.evaluations);
  printf("model estimate:  delay %.1f ps | slew %.1f ps | power %.3f mW/bit | area %.1f um2\n",
         unit::to_ps(best.estimate.delay), unit::to_ps(best.estimate.output_slew),
         unit::to_mW(best.estimate.total_power()),
         unit::to_um2(best.estimate.repeater_area));

  // 4. Golden cross-check: implement the line and simulate it.
  printf("\nrunning golden sign-off (distributed transistor-level line"
         " with opposing aggressors)...\n");
  const SignoffResult golden = signoff_link(tech, ctx, best.design);
  printf("golden:          delay %.1f ps | slew %.1f ps  (%zu circuit nodes)\n",
         unit::to_ps(golden.delay), unit::to_ps(golden.output_slew), golden.node_count);
  printf("model error:     %+.1f %% (paper Table II: within ~12 %%)\n",
         100.0 * (best.estimate.delay - golden.delay) / golden.delay);
  return 0;
}
