// Waveform dump: implement a buffered link at transistor level, simulate
// the worst-case switching event, and write the victim input/output
// waveforms (plus per-stage probes) to a CSV for plotting — a direct view
// into what the golden sign-off engine actually computes.
//
// Usage:   ./examples/waveform_dump [tech] [length_mm] [out.csv]
// Plot:    python3 -c "import pandas as p, matplotlib.pyplot as m; \
//            d=p.read_csv('waves.csv'); d.plot(x='time_ps'); m.show()"
#include <cstdio>
#include <string>

#include "spice/deck.hpp"
#include "spice/transient.hpp"
#include "sta/signoff.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace pim;
using namespace pim::unit;

int main(int argc, char** argv) {
  const TechNode node = argc > 1 ? tech_node_from_name(argv[1]) : TechNode::N65;
  const double length_mm = argc > 2 ? parse_double(argv[2]) : 3.0;
  const std::string out_path = argc > 3 ? argv[3] : "waves.csv";

  const Technology& tech = technology(node);
  LinkContext ctx;
  ctx.length = length_mm * mm;
  ctx.input_slew = 100 * ps;
  LinkDesign design;
  design.drive = 16;
  design.num_repeaters = std::max(1, static_cast<int>(length_mm));

  printf("implementing %.1f mm x %d repeaters at %s (worst-case aggressors)...\n",
         length_mm, design.num_repeaters, tech.name.c_str());
  const LinkNetlist net = build_link_netlist(tech, ctx, design);
  printf("netlist: %zu nodes, %zu devices, %zu capacitors\n", net.circuit.node_count(),
         net.circuit.mosfets().size(), net.circuit.capacitors().size());

  // Also archive the deck so the exact circuit can be inspected/replayed.
  save_deck(net.circuit, "link_netlist.sp");
  printf("wrote link_netlist.sp\n");

  TransientOptions opt;
  opt.dt = 0.5 * ps;
  opt.t_stop = 0.3e-9 + 8.0 * length_mm * 100 * ps;  // generous window
  const TransientResult res =
      run_transient(net.circuit, opt, {net.victim_in, net.victim_out});

  CsvWriter csv({"time_ps", "victim_in_v", "victim_out_v"});
  const auto& vin = res.trace(net.victim_in);
  const auto& vout = res.trace(net.victim_out);
  for (size_t i = 0; i < res.time.size(); i += 4) {  // decimate 4x
    csv.add_row({format("%.1f", res.time[i] / ps), format("%.4f", vin[i]),
                 format("%.4f", vout[i])});
  }
  csv.write_file(out_path);
  printf("wrote %s (%zu samples)\n", out_path.c_str(), csv.row_count());
  return 0;
}
