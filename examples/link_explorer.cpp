// Link explorer: sweep repeater count and size for a global link and
// print the delay/power/area landscape — the view a system-level designer
// uses to pick an operating point. Also contrasts design styles and
// staggered insertion.
//
// Usage:   ./examples/link_explorer [tech] [length_mm]
// e.g.     ./examples/link_explorer 45nm 7.5
#include <cstdio>
#include <string>

#include "buffering/optimize.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pim;
using namespace pim::unit;

int main(int argc, char** argv) {
  const TechNode node = argc > 1 ? tech_node_from_name(argv[1]) : TechNode::N65;
  const double length_mm = argc > 2 ? parse_double(argv[2]) : 5.0;

  const Technology& tech = technology(node);
  const TechnologyFit fit =
      calibrated_fit(node, "pim_coeffs_" + tech.name + ".pimfit");
  const ProposedModel model(tech, fit);

  LinkContext ctx;
  ctx.length = length_mm * mm;
  ctx.input_slew = 100 * ps;
  ctx.frequency = tech.clock_frequency;

  printf("Link explorer — %.1f mm global link at %s (worst-case coupling)\n\n",
         length_mm, tech.name.c_str());

  // Landscape: delay over (N, drive).
  const std::vector<int> drives = {4, 8, 16, 32, 64};
  std::vector<std::string> header = {"N \\ drive"};
  for (int d : drives) header.push_back(format("D%d (ps)", d));
  Table landscape(header);
  for (int n : {1, 2, 4, 6, 8, 12, 16, 24}) {
    std::vector<std::string> row = {format("%d", n)};
    for (int drive : drives) {
      LinkDesign d;
      d.drive = drive;
      d.num_repeaters = n;
      row.push_back(format("%.0f", model.evaluate(ctx, d).delay / ps));
    }
    landscape.add_row(row);
  }
  printf("%s\n", landscape.to_string().c_str());

  // Best points per objective.
  Table best({"objective", "N", "drive", "delay (ps)", "power (mW/bit)", "area (um2/bit)"});
  for (const auto& [label, weight] :
       std::vector<std::pair<std::string, double>>{{"min delay", 1.0},
                                                   {"balanced", 0.5},
                                                   {"min power", 0.0}}) {
    BufferingOptions opt;
    opt.weight = weight;
    opt.kinds = {CellKind::Inverter};
    if (weight == 0.0) opt.max_delay = 2.0 / tech.clock_frequency;  // keep it sane
    const BufferingResult r = optimize_buffering(model, ctx, opt);
    best.add_row({label, format("%d", r.design.num_repeaters), format("D%d", r.design.drive),
                  format("%.1f", r.estimate.delay / ps),
                  format("%.4f", r.estimate.total_power() / mW),
                  format("%.1f", r.estimate.repeater_area / um2)});
  }
  printf("%s\n", best.to_string().c_str());

  // Design styles at the balanced point.
  Table styles({"style", "delay (ps)", "power (mW/bit)", "track area (um2/bit)"});
  for (DesignStyle style :
       {DesignStyle::SingleSpacing, DesignStyle::DoubleSpacing, DesignStyle::Shielded}) {
    LinkContext sctx = ctx;
    sctx.style = style;
    BufferingOptions opt;
    opt.weight = 0.5;
    const BufferingResult r = optimize_buffering(model, sctx, opt);
    styles.add_row({design_style_name(style), format("%.1f", r.estimate.delay / ps),
                    format("%.4f", r.estimate.total_power() / mW),
                    format("%.1f", r.estimate.wire_area / um2)});
  }
  printf("%s", styles.to_string().c_str());
  printf("(SS = min pitch worst-case coupling, DS = double spacing, SH = shielded)\n");
  return 0;
}
