// NoC synthesis walkthrough: synthesize an on-chip network for a SoC
// communication spec with the calibrated interconnect model, report the
// figures of merit, audit the links, and export the topology as Graphviz
// DOT plus the spec in the text format.
//
// Usage:   ./examples/noc_synthesis [dvopd|vproc|<spec-file>] [tech]
// e.g.     ./examples/noc_synthesis dvopd 45nm
#include <cstdio>
#include <fstream>
#include <string>

#include "cosi/specfile.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pim;
using namespace pim::unit;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "dvopd";
  const TechNode node = argc > 2 ? tech_node_from_name(argv[2]) : TechNode::N45;

  SocSpec spec;
  if (which == "dvopd") {
    spec = dvopd_spec();
  } else if (which == "vproc") {
    spec = vproc_spec();
  } else {
    spec = load_soc_spec(which);
  }

  const Technology& tech = technology(node);
  printf("SoC '%s': %zu cores, %zu flows, %d-bit data, %.1f x %.1f mm die\n",
         spec.name.c_str(), spec.cores.size(), spec.flows.size(), spec.data_width,
         spec.die_width / mm, spec.die_height / mm);
  printf("technology %s @ %.2f GHz\n\n", tech.name.c_str(),
         unit::to_GHz(tech.clock_frequency));

  const TechnologyFit fit = calibrated_fit(node, "pim_coeffs_" + tech.name + ".pimfit");
  const ProposedModel proposed(tech, fit);
  const BakogluModel original(tech);

  Table table({"model", "Pdyn (mW)", "Pleak (mW)", "worst delay (ps)", "area (mm2)",
               "hops avg/max", "routers", "links", "audit"});
  NocSynthesisResult keep{NocArchitecture(spec), {}, 0, 0, {}, 0};
  for (const InterconnectModel* model :
       {static_cast<const InterconnectModel*>(&original),
        static_cast<const InterconnectModel*>(&proposed)}) {
    NocSynthesisResult r = synthesize_noc(spec, *model);
    const AuditResult audit =
        audit_links(r.architecture, proposed, r.base_context, r.delay_budget);
    const NocMetrics& m = r.metrics;
    table.add_row({model->name(), format("%.2f", m.dynamic_power() / mW),
                   format("%.2f", m.leakage_power() / mW),
                   format("%.0f", m.worst_link_delay / ps),
                   format("%.3f", m.total_area() / mm2),
                   format("%.2f / %d", m.avg_hops, m.max_hops),
                   format("%d", m.num_routers), format("%d", m.num_links),
                   format("%d/%d viol", audit.violations, audit.links_checked)});
    if (model == static_cast<const InterconnectModel*>(&proposed)) keep = std::move(r);
  }
  printf("%s\n", table.to_string().c_str());
  printf("('audit' re-times every chosen link with the calibrated model against the\n"
         " %.0f ps per-hop budget — the original model's optimism shows up here)\n\n",
         0.5 / tech.clock_frequency / ps);

  // Export artifacts for the proposed-model architecture.
  const std::string dot_path = spec.name + "_noc.dot";
  std::ofstream dot(dot_path);
  dot << to_dot(keep.architecture);
  printf("wrote %s (render with: dot -Tpng %s -o noc.png)\n", dot_path.c_str(),
         dot_path.c_str());
  const std::string spec_path = spec.name + ".soc";
  save_soc_spec(spec, spec_path);
  printf("wrote %s (the spec in pim's text format)\n", spec_path.c_str());
  return 0;
}
