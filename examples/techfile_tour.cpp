// Tour of the EDA file formats pim speaks:
//   * technology descriptors  (tech-file text format)
//   * characterized libraries (Liberty-lite)
//   * fitted coefficients     (.pimfit)
//   * SoC communication specs (.soc)
// Writes one of each to the current directory, reads them back, and
// prints digests — a template for wiring pim into an external flow.
//
// Usage:   ./examples/techfile_tour [tech]
#include <cstdio>
#include <string>

#include "charlib/characterize.hpp"
#include "charlib/coeffs_io.hpp"
#include "charlib/fit.hpp"
#include "cosi/specfile.hpp"
#include "cosi/testcases.hpp"
#include "liberty/libertyfile.hpp"
#include "tech/techfile.hpp"
#include "util/units.hpp"

using namespace pim;
using namespace pim::unit;

int main(int argc, char** argv) {
  const TechNode node = argc > 1 ? tech_node_from_name(argv[1]) : TechNode::N65;
  const Technology& tech = technology(node);

  // 1. Technology file.
  const std::string tech_path = tech.name + ".tech";
  save_techfile(tech, tech_path);
  const Technology reread = load_techfile(tech_path);
  printf("wrote %-18s and reread it: vdd=%.2f V, global wire %.0f nm wide,\n",
         tech_path.c_str(), reread.vdd, reread.interconnect.global.width / nm);
  printf("  barrier %.1f nm, row height %.2f um\n",
         reread.interconnect.barrier_thickness / nm, reread.area.row_height / um);

  // 2. A small characterized library in Liberty-lite format (two drives
  //    to keep this example quick; the benches build full libraries).
  CharacterizationOptions copt;
  copt.drives = {4, 16};
  copt.slew_axis = {50 * ps, 200 * ps};
  copt.fanout_axis = {2.0, 10.0};
  copt.buffers = false;
  printf("\ncharacterizing INVD4/INVD16 (transistor-level sims)...\n");
  const CellLibrary lib = characterize_library(tech, copt);
  const std::string lib_path = "pim_" + tech.name + "_mini.lib";
  save_liberty(lib, lib_path);
  const CellLibrary relib = load_liberty(lib_path);
  const RepeaterCell& cell = relib.cell("INVD16");
  printf("wrote %-18s and reread it: %zu cells; INVD16: cin=%.2f fF, leak=%.1f nW,\n",
         lib_path.c_str(), relib.cells().size(), cell.input_cap / fF,
         cell.leakage_avg() / nW);
  printf("  delay(100 ps, 50 fF) = %.1f ps\n",
         cell.worst_delay(100 * ps, 50 * fF) / ps);

  // 3. Fitted coefficients (without the composition calibration — that
  //    needs golden line sims; see the quickstart / benches).
  CharacterizationOptions fit_opt;
  fit_opt.drives = {2, 8, 32};
  fit_opt.buffers = false;
  printf("\nfitting coefficients from a 3-size library...\n");
  const TechnologyFit fit = fit_technology(tech, characterize_library(tech, fit_opt));
  const std::string fit_path = tech.name + ".pimfit";
  save_fit(fit, fit_path);
  const TechnologyFit refit = load_fit(fit_path);
  printf("wrote %-18s and reread it: gamma=%.3f fF/um, rho0=%.0f ohm*um (R^2=%.3f)\n",
         fit_path.c_str(), refit.gamma * um / fF, refit.inv_fall.rho0 / um,
         refit.inv_fall.r2_drive_res);

  // 4. SoC spec.
  const SocSpec spec = dvopd_spec();
  const std::string spec_path = spec.name + ".soc";
  save_soc_spec(spec, spec_path);
  const SocSpec respec = load_soc_spec(spec_path);
  printf("\nwrote %-18s and reread it: %zu cores, %zu flows, %.2f Gb/s total\n",
         spec_path.c_str(), respec.cores.size(), respec.flows.size(),
         respec.total_bandwidth() / 1e9);
  return 0;
}
